//! The LIFT node state machine.
//!
//! One protocol round, driven by the caller exactly like the Brahms and
//! BASALT state machines so all three slot into the same engine:
//!
//! ```text
//! node.plan_round_into(&mut pushes, &mut pulls)
//! ... deliver pushes (rate-limited) → receiver.record_push(sender)
//! ... answer pulls: responder.pull_answer_into(&mut reply)
//!                 → requester.record_pull_answer(responder, &reply)
//! report = node.finish_round()        // hub-score fade upkeep
//! ```
//!
//! Every ID mentioned by gossip — push senders, pull responders, pull
//! answer contents — bumps that ID's **hub score**, an in-degree
//! estimate: hubs are talked about often, leaf nodes rarely. The view
//! then *avoids* hubs. A candidate only enters a full view by
//! challenging the current hubbiest member, succeeding with probability
//! proportional to the score gap, and exchange partners are drawn
//! lowest-score-first. An adversary flooding its IDs therefore marks
//! them as hubs and *reduces* their admission odds — repetition is
//! self-defeating, the same property BASALT gets from hit counters but
//! obtained from degree estimation instead of seeded ranking.

use crate::config::LiftConfig;
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;
use std::collections::BTreeMap;

/// What happened when a round was finalised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiftRoundReport {
    /// Hub-score counters halved by a fade this round.
    pub faded: usize,
    /// Rounds finalised so far (including this one).
    pub round: u64,
}

/// A LIFT node: hub-score table + hub-avoiding view + deterministic RNG.
///
/// # Examples
///
/// ```
/// use raptee_lift::{LiftConfig, LiftNode};
/// use raptee_net::NodeId;
///
/// let cfg = LiftConfig::for_view(10, 30);
/// let bootstrap: Vec<NodeId> = (1..=10).map(NodeId).collect();
/// let mut node = LiftNode::new(NodeId(0), cfg, &bootstrap, 42);
/// let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
/// node.plan_round_into(&mut pushes, &mut pulls);
/// assert_eq!(pushes.len(), cfg.push_count);
/// assert!(!pulls.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LiftNode {
    id: NodeId,
    config: LiftConfig,
    rng: Xoshiro256StarStar,
    rounds: u64,
    /// The current view: up to `view_size` distinct IDs, ordered by
    /// admission (selection never depends on position, only on scores).
    view: Vec<NodeId>,
    /// Hub-score counters: how often each ID was mentioned by gossip.
    /// Bounded by `score_capacity` — the coldest off-view counters are
    /// pruned first, so scores are exactly monotone only while the
    /// table has room (the adversary cannot blow it up regardless).
    scores: BTreeMap<NodeId, u64>,
    /// Scratch index buffer for lowest-score selection.
    scratch_order: Vec<u32>,
}

impl LiftNode {
    /// Creates a node bootstrapped from `bootstrap` (observed in order,
    /// as if gossip had mentioned each once).
    pub fn new(id: NodeId, config: LiftConfig, bootstrap: &[NodeId], seed: u64) -> Self {
        config.validate();
        let mut node = Self {
            id,
            config,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            rounds: 0,
            view: Vec::with_capacity(config.view_size),
            scores: BTreeMap::new(),
            scratch_order: Vec::new(),
        };
        for &b in bootstrap {
            node.observe(b);
        }
        node
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol parameters.
    pub fn config(&self) -> &LiftConfig {
        &self.config
    }

    /// Rounds finalised so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current view.
    pub fn view(&self) -> &[NodeId] {
        &self.view
    }

    /// Whether `id` currently occupies a view slot.
    pub fn contains(&self, id: NodeId) -> bool {
        self.view.contains(&id)
    }

    /// The current hub-score estimate for `id` (0 when untracked).
    pub fn hub_score(&self, id: NodeId) -> u64 {
        self.scores.get(&id).copied().unwrap_or(0)
    }

    /// Hub-score counters currently tracked.
    pub fn tracked_scores(&self) -> usize {
        self.scores.len()
    }

    /// Records one gossip mention of `id`: bumps its hub score, then
    /// offers it to the view. A candidate facing a full view challenges
    /// the hubbiest member `m` and replaces it with probability
    /// `(s_m − s_c) / (s_m + 1)` — never when the candidate scores at
    /// least as high. Frequently-mentioned IDs (hubs, and any ID an
    /// adversary floods) are thus progressively locked out.
    pub fn observe(&mut self, id: NodeId) {
        if id == self.id {
            return;
        }
        let score = {
            let e = self.scores.entry(id).or_insert(0);
            *e += 1;
            *e
        };
        self.prune_scores(id);
        if self.view.contains(&id) {
            return;
        }
        if self.view.len() < self.config.view_size {
            self.view.push(id);
            return;
        }
        let (pos, incumbent) = self.hubbiest();
        let s_m = self.hub_score(incumbent);
        if score >= s_m {
            return;
        }
        let gap = s_m - score;
        if self.rng.next_below(s_m + 1) < gap {
            self.view[pos] = id;
        }
    }

    /// Records an incoming push (the sender advertises one ID).
    pub fn record_push(&mut self, advertised: NodeId) {
        self.observe(advertised);
    }

    /// Answers a pull request: the current view.
    pub fn pull_answer(&self) -> Vec<NodeId> {
        self.view.clone()
    }

    /// [`LiftNode::pull_answer`] into a caller-owned buffer (cleared
    /// first) — the engine's pull loop reuses one reply buffer for the
    /// whole round.
    pub fn pull_answer_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.view);
    }

    /// Records a pull answer: the responder and every returned ID count
    /// as one gossip mention each.
    pub fn record_pull_answer(&mut self, responder: NodeId, ids: &[NodeId]) {
        self.observe(responder);
        for &id in ids {
            self.observe(id);
        }
    }

    /// Chooses this round's targets into caller-owned buffers (cleared
    /// and refilled): `push_count` uniform draws from the view (with
    /// replacement, like Brahms' `rand(V)`), and the `pull_count`
    /// lowest-score — least hub-like — members as exchange partners.
    pub fn plan_round_into(&mut self, pushes: &mut Vec<NodeId>, pulls: &mut Vec<NodeId>) {
        pushes.clear();
        pulls.clear();
        if self.view.is_empty() {
            return;
        }
        for _ in 0..self.config.push_count {
            pushes.push(self.view[self.rng.index(self.view.len())]);
        }
        self.scratch_order.clear();
        self.scratch_order.extend(0..self.view.len() as u32);
        let view = &self.view;
        let scores = &self.scores;
        self.scratch_order.sort_unstable_by_key(|&i| {
            let id = view[i as usize];
            (scores.get(&id).copied().unwrap_or(0), id)
        });
        pulls.extend(
            self.scratch_order
                .iter()
                .take(self.config.pull_count)
                .map(|&i| view[i as usize]),
        );
    }

    /// Quarantines `id`: evicts it from the view and forgets its score
    /// (a convicted peer's hub estimate is meaningless). Returns the
    /// number of view slots vacated.
    pub fn quarantine(&mut self, id: NodeId) -> usize {
        self.scores.remove(&id);
        let before = self.view.len();
        self.view.retain(|&v| v != id);
        before - self.view.len()
    }

    /// Finalises the round: when a fade is due, halves every hub-score
    /// counter (so estimates track the *recent* degree, not all of
    /// history) and prunes zeroed off-view counters.
    pub fn finish_round(&mut self) -> LiftRoundReport {
        self.rounds += 1;
        let mut faded = 0;
        if self.config.fade_interval > 0
            && self.rounds.is_multiple_of(self.config.fade_interval as u64)
        {
            faded = self.fade();
        }
        LiftRoundReport {
            faded,
            round: self.rounds,
        }
    }

    /// Cold rejoin after a crash–restart: fresh RNG, view and scores,
    /// re-bootstrapped from `bootstrap` — only identity and the round
    /// counter survive.
    pub fn rejoin_cold(&mut self, bootstrap: &[NodeId], seed: u64) {
        self.rng = Xoshiro256StarStar::seed_from_u64(seed);
        self.view.clear();
        self.scores.clear();
        for &b in bootstrap {
            self.observe(b);
        }
    }

    /// Warm rejoin after a crash–restart: the view survives but every
    /// hub estimate pays one forced fade — degree observed before the
    /// outage is stale evidence. Returns the counters halved.
    pub fn rejoin_warm(&mut self) -> usize {
        self.fade()
    }

    /// Halves every counter, pruning zeroed off-view entries; returns
    /// how many nonzero counters were halved.
    fn fade(&mut self) -> usize {
        let mut faded = 0;
        for s in self.scores.values_mut() {
            if *s > 0 {
                faded += 1;
                *s >>= 1;
            }
        }
        let view = &self.view;
        self.scores.retain(|id, s| *s > 0 || view.contains(id));
        faded
    }

    /// The view member with the maximal `(score, id)` — the hubbiest.
    fn hubbiest(&self) -> (usize, NodeId) {
        let (pos, &id) = self
            .view
            .iter()
            .enumerate()
            .max_by_key(|(_, &id)| (self.scores.get(&id).copied().unwrap_or(0), id))
            .expect("hubbiest() requires a non-empty view");
        (pos, id)
    }

    /// Evicts the coldest off-view counters (excluding `keep`) until the
    /// table fits `score_capacity` again.
    fn prune_scores(&mut self, keep: NodeId) {
        while self.scores.len() > self.config.score_capacity {
            let victim = self
                .scores
                .iter()
                .filter(|(id, _)| **id != keep && !self.view.contains(id))
                .min_by_key(|(id, s)| (**s, **id))
                .map(|(id, _)| *id);
            match victim {
                Some(v) => self.scores.remove(&v),
                None => break, // everything left is in-view or protected
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn node(view: usize) -> LiftNode {
        LiftNode::new(NodeId(0), LiftConfig::for_view(view, 0), &ids(1..40), 7)
    }

    #[test]
    fn bootstrap_fills_view() {
        let n = node(10);
        assert_eq!(n.view().len(), 10);
    }

    #[test]
    fn empty_bootstrap_plans_nothing() {
        let mut n = LiftNode::new(NodeId(0), LiftConfig::for_view(10, 0), &[], 7);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        assert!(pushes.is_empty());
        assert!(pulls.is_empty());
    }

    #[test]
    fn plan_counts_match_config() {
        let mut n = node(10);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        assert_eq!(pushes.len(), 4); // round(0.4·10)
        assert_eq!(pulls.len(), 4);
        for t in pushes.iter().chain(&pulls) {
            assert!(n.contains(*t));
        }
    }

    #[test]
    fn pulls_prefer_low_score_members() {
        let mut n = node(10);
        // Make one view member an obvious hub.
        let hub = n.view()[0];
        for _ in 0..50 {
            n.observe(hub);
        }
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        assert!(
            !pulls.contains(&hub),
            "exchange partners are the least hub-like members"
        );
    }

    #[test]
    fn flooded_ids_are_locked_out() {
        let mut n = node(10);
        // An off-view ID flooded by an adversary becomes a known hub …
        for _ in 0..1000 {
            n.observe(NodeId(999));
        }
        // … and can no longer displace anyone: its score dwarfs every
        // incumbent's, so the replacement gap is never positive.
        assert!(!n.contains(NodeId(999)));
        assert!(n.hub_score(NodeId(999)) >= 1000);
    }

    #[test]
    fn own_id_never_observed() {
        let mut n = node(10);
        n.observe(NodeId(0));
        assert_eq!(n.hub_score(NodeId(0)), 0);
        assert!(!n.contains(NodeId(0)));
    }

    #[test]
    fn fade_halves_scores_on_schedule() {
        let mut n = LiftNode::new(NodeId(0), LiftConfig::for_view(10, 3), &ids(1..40), 7);
        let probe = n.view()[0];
        for _ in 0..7 {
            n.observe(probe);
        }
        let before = n.hub_score(probe);
        assert_eq!(n.finish_round().faded, 0); // round 1
        assert_eq!(n.finish_round().faded, 0); // round 2
        let report = n.finish_round(); // round 3 — fade fires
        assert!(report.faded > 0);
        assert_eq!(report.round, 3);
        assert_eq!(n.hub_score(probe), before / 2);
    }

    #[test]
    fn fade_disabled_with_zero_interval() {
        let mut n = node(10);
        for _ in 0..50 {
            assert_eq!(n.finish_round().faded, 0);
        }
    }

    #[test]
    fn score_table_stays_bounded() {
        let mut n = node(10);
        let cap = n.config().score_capacity;
        for id in 1..(cap as u64 * 3) {
            n.observe(NodeId(id));
        }
        assert!(n.tracked_scores() <= cap);
    }

    #[test]
    fn quarantine_evicts_and_forgets() {
        let mut n = node(10);
        let victim = n.view()[3];
        assert_eq!(n.quarantine(victim), 1);
        assert!(!n.contains(victim));
        assert_eq!(n.hub_score(victim), 0);
        assert_eq!(n.quarantine(victim), 0);
    }

    #[test]
    fn cold_rejoin_matches_a_freshly_bootstrapped_node() {
        let mut n = node(10);
        n.record_pull_answer(NodeId(500), &ids(600..620));
        n.finish_round();
        let boot = ids(1000..1030);
        n.rejoin_cold(&boot, 31337);
        let mut fresh = LiftNode::new(NodeId(0), *n.config(), &boot, 31337);
        assert_eq!(n.view(), fresh.view());
        let (mut p1, mut q1, mut p2, mut q2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        n.plan_round_into(&mut p1, &mut q1);
        fresh.plan_round_into(&mut p2, &mut q2);
        assert_eq!((p1, q1), (p2, q2));
    }

    #[test]
    fn warm_rejoin_fades_scores_but_keeps_the_view() {
        let mut n = node(10);
        let probe = n.view()[0];
        for _ in 0..9 {
            n.observe(probe);
        }
        let view_before = n.view().to_vec();
        let score_before = n.hub_score(probe);
        let faded = n.rejoin_warm();
        assert!(faded > 0, "staleness penalty");
        assert_eq!(n.view(), view_before.as_slice());
        assert_eq!(n.hub_score(probe), score_before / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut n = node(10);
            n.record_push(NodeId(77));
            n.record_pull_answer(NodeId(88), &ids(100..120));
            for _ in 0..10 {
                n.finish_round();
            }
            let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
            n.plan_round_into(&mut pushes, &mut pulls);
            (pushes, pulls, n.view().to_vec())
        };
        assert_eq!(mk(), mk());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Hub-score monotonicity: with fading disabled and the score
        /// table under capacity, observation streams only ever grow
        /// counters — replaying more observations never decreases any
        /// ID's hub score.
        #[test]
        fn scores_are_monotone_under_observation(
            stream in proptest::collection::vec(1u64..50, 1..200),
            extra in proptest::collection::vec(1u64..50, 0..100),
            seed in 0u64..10_000,
        ) {
            let mut n = LiftNode::new(NodeId(0), LiftConfig::for_view(8, 0), &[], seed);
            for &id in &stream {
                n.observe(NodeId(id));
            }
            let before: Vec<(u64, u64)> =
                (1..50).map(|id| (id, n.hub_score(NodeId(id)))).collect();
            for &id in &extra {
                n.observe(NodeId(id));
            }
            for (id, s) in before {
                prop_assert!(
                    n.hub_score(NodeId(id)) >= s,
                    "score of {id} decreased without a fade"
                );
            }
        }

        /// Each observation bumps exactly the observed ID by exactly one.
        #[test]
        fn observation_increments_exactly_one_counter(
            stream in proptest::collection::vec(1u64..50, 0..100),
            next in 1u64..50,
            seed in 0u64..10_000,
        ) {
            let mut n = LiftNode::new(NodeId(0), LiftConfig::for_view(8, 0), &[], seed);
            for &id in &stream {
                n.observe(NodeId(id));
            }
            let before: Vec<u64> = (1..50).map(|id| n.hub_score(NodeId(id))).collect();
            n.observe(NodeId(next));
            for (id, b) in (1u64..50).zip(before) {
                let expect = if id == next { b + 1 } else { b };
                prop_assert_eq!(n.hub_score(NodeId(id)), expect);
            }
        }

        /// The view never exceeds its configured size and never holds
        /// duplicates or the node's own ID.
        #[test]
        fn view_stays_distinct_and_bounded(
            stream in proptest::collection::vec(0u64..200, 0..300),
            seed in 0u64..10_000,
        ) {
            let mut n = LiftNode::new(NodeId(0), LiftConfig::for_view(8, 0), &[], seed);
            for &id in &stream {
                n.observe(NodeId(id));
            }
            prop_assert!(n.view().len() <= 8);
            let mut sorted = n.view().to_vec();
            sorted.sort_unstable();
            let mut dedup = sorted.clone();
            dedup.dedup();
            prop_assert_eq!(sorted, dedup);
            prop_assert!(!n.contains(NodeId(0)));
        }
    }
}
