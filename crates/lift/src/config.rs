//! LIFT protocol parameters.

/// Parameters of a LIFT node.
///
/// The defaults mirror the message budget of the Brahms/RAPTEE and
/// BASALT scenarios so head-to-head comparisons spend the same
/// bandwidth: `push_count` and `pull_count` are both `round(0.4·v)` —
/// the `α·l1`/`β·l1` split `BrahmsConfig` uses at equal view sizes (and
/// therefore the same per-identity rate-limiter budget).
///
/// # Examples
///
/// ```
/// use raptee_lift::LiftConfig;
/// let cfg = LiftConfig::for_view(20, 30);
/// assert_eq!(cfg.view_size, 20);
/// assert_eq!(cfg.push_count, 8);
/// cfg.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiftConfig {
    /// Number of view slots `v`.
    pub view_size: usize,
    /// Rounds between hub-score fades (each fade halves every counter);
    /// `0` disables fading, making scores monotone forever.
    pub fade_interval: usize,
    /// Push messages sent per round (own ID advertised to view peers).
    pub push_count: usize,
    /// Pull (exchange) requests sent per round, aimed at the
    /// lowest-score — least hub-like — view members.
    pub pull_count: usize,
    /// Maximum tracked hub-score counters. Estimation state stays
    /// bounded regardless of how many IDs gossip mentions: once full,
    /// the coldest off-view counters are pruned.
    pub score_capacity: usize,
}

impl LiftConfig {
    /// Brahms-budget-parity configuration for a view of `view_size`
    /// slots, fading hub scores every `fade_interval` rounds.
    pub fn for_view(view_size: usize, fade_interval: usize) -> Self {
        let fanout = ((0.4 * view_size as f64).round() as usize).max(1);
        let cfg = Self {
            view_size,
            fade_interval,
            push_count: fanout,
            pull_count: fanout,
            score_capacity: (view_size * 8).max(64),
        };
        cfg.validate();
        cfg
    }

    /// Checks parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics when any size is zero or the score table cannot hold the
    /// view.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "LIFT view size must be positive");
        assert!(self.push_count > 0, "push count must be positive");
        assert!(self.pull_count > 0, "pull count must be positive");
        assert!(
            self.score_capacity >= self.view_size,
            "score capacity must cover the view"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_view_matches_brahms_budget() {
        let cfg = LiftConfig::for_view(16, 30);
        assert_eq!(cfg.push_count, 6); // round(0.4·16) = α·l1 at l1=16
        assert_eq!(cfg.pull_count, 6);
        assert_eq!(cfg.fade_interval, 30);
        assert!(cfg.score_capacity >= 16);
    }

    #[test]
    fn tiny_views_keep_positive_fanout() {
        let cfg = LiftConfig::for_view(1, 0);
        assert_eq!(cfg.push_count, 1);
        assert_eq!(cfg.pull_count, 1);
    }

    #[test]
    #[should_panic(expected = "view size must be positive")]
    fn zero_view_rejected() {
        LiftConfig::for_view(0, 10);
    }

    #[test]
    #[should_panic(expected = "score capacity")]
    fn undersized_score_table_rejected() {
        LiftConfig {
            score_capacity: 4,
            ..LiftConfig::for_view(8, 0)
        }
        .validate();
    }
}
