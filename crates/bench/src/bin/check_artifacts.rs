//! CI checker for the experiments-artifact pipeline: verifies that
//! every bench target listed in EXPERIMENTS.md's table actually emitted
//! its CSV artifacts under `target/raptee-bench/`.
//!
//! ```text
//! check_artifacts <EXPERIMENTS.md> <csv-dir> [target-prefix ...]
//! ```
//!
//! With no prefixes, every table row that names CSV files is checked;
//! with prefixes (e.g. `fig`), only rows whose bench target starts with
//! one of them. A row whose CSV cell names no `.csv` file (wall-clock
//! benches) is skipped. `*` in a CSV name is a glob over the directory
//! listing (`overlay_quality_*.csv`). A named CSV must exist **and** be
//! non-empty; otherwise the checker lists every violation and exits 1 —
//! that is what fails the CI `experiments` job when a bench target
//! silently stops emitting its figure data.

use std::path::Path;
use std::process::ExitCode;

/// One EXPERIMENTS.md table row: the bench target and the CSV names its
/// last cell promises.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    target: String,
    csvs: Vec<String>,
}

/// Extracts the backtick-quoted spans of one line.
fn backtick_spans(line: &str) -> Vec<String> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('`') else { break };
        spans.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    spans
}

/// Parses the EXPERIMENTS.md paper-vs-measured table into rows. A table
/// row looks like `| \`target\` | paper claim | measured | \`a.csv\`,
/// \`b.csv\` — notes |`; the first backticked span of the first cell is
/// the target, and every backticked span of the *last* cell ending in
/// `.csv` is a promised artifact.
fn parse_rows(markdown: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for line in markdown.lines() {
        let line = line.trim();
        if !line.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let Some(target) = backtick_spans(cells[0]).into_iter().next() else {
            continue;
        };
        let csvs: Vec<String> = backtick_spans(cells[cells.len() - 1])
            .into_iter()
            .filter(|s| s.ends_with(".csv"))
            .collect();
        rows.push(Row { target, csvs });
    }
    rows
}

/// Whether `name` matches `pattern`, where `*` matches any (possibly
/// empty) substring — enough for the `prefix_*.csv` forms the table
/// uses.
fn glob_matches(pattern: &str, name: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == name;
    }
    let mut rest = name;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            let Some(r) = rest.strip_prefix(part) else {
                return false;
            };
            rest = r;
        } else if i == parts.len() - 1 {
            return rest.ends_with(part);
        } else if let Some(pos) = rest.find(part) {
            rest = &rest[pos + part.len()..];
        } else {
            return false;
        }
    }
    true
}

/// Checks one row against the CSV directory listing; returns the
/// violations (missing or empty artifacts).
fn check_row(row: &Row, dir: &Path, listing: &[String]) -> Vec<String> {
    let mut problems = Vec::new();
    for csv in &row.csvs {
        if csv.contains('*') {
            // A glob row needs at least one match, and every match must
            // be non-empty (an emitted-but-truncated artifact is as
            // silent a regression as a missing one).
            let matches: Vec<&String> = listing.iter().filter(|f| glob_matches(csv, f)).collect();
            if matches.is_empty() {
                problems.push(format!("{}: no file matches `{csv}`", row.target));
            }
            for name in matches {
                if std::fs::metadata(dir.join(name)).is_ok_and(|m| m.len() == 0) {
                    problems.push(format!("{}: `{name}` (via `{csv}`) is empty", row.target));
                }
            }
            continue;
        }
        let path = dir.join(csv);
        match std::fs::metadata(&path) {
            Err(_) => problems.push(format!("{}: `{csv}` was not emitted", row.target)),
            Ok(m) if m.len() == 0 => {
                problems.push(format!("{}: `{csv}` is empty", row.target));
            }
            Ok(_) => {}
        }
    }
    problems
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [md_path, dir_path, prefixes @ ..] = args.as_slice() else {
        eprintln!("usage: check_artifacts <EXPERIMENTS.md> <csv-dir> [target-prefix ...]");
        return ExitCode::FAILURE;
    };
    let markdown = match std::fs::read_to_string(md_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {md_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = Path::new(dir_path);
    let listing: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();

    let rows: Vec<Row> = parse_rows(&markdown)
        .into_iter()
        .filter(|r| !r.csvs.is_empty())
        .filter(|r| prefixes.is_empty() || prefixes.iter().any(|p| r.target.starts_with(p)))
        .collect();
    if rows.is_empty() {
        eprintln!("no EXPERIMENTS.md rows matched — wrong file or prefixes?");
        return ExitCode::FAILURE;
    }

    let mut problems = Vec::new();
    for row in &rows {
        problems.extend(check_row(row, dir, &listing));
    }
    if problems.is_empty() {
        println!(
            "all {} bench targets emitted their promised CSVs under {}",
            rows.len(),
            dir.display()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("MISSING ARTIFACT — {p}");
        }
        eprintln!(
            "{} violation(s) across {} checked targets",
            problems.len(),
            rows.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "\
# header
| Target | Paper value | Measured | CSV |
|---|---|---|---|
| `fig3_brahms_baseline` | claim | cell | `fig3a.csv`, `fig3b.csv` |
| `overlay_quality` | claim | | `overlay_quality_*.csv` |
| `crypto_primitives` | claim | | — (wall-clock, printed) |
| `fig_basalt_comparison` | claim | cell | `fig_basalt_comparisona.csv` — panel (b) differs |
";

    #[test]
    fn parses_targets_and_csvs() {
        let rows = parse_rows(TABLE);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].target, "fig3_brahms_baseline");
        assert_eq!(rows[0].csvs, vec!["fig3a.csv", "fig3b.csv"]);
        assert_eq!(rows[1].csvs, vec!["overlay_quality_*.csv"]);
        assert!(rows[2].csvs.is_empty(), "wall-clock rows promise no CSV");
        assert_eq!(
            rows[3].csvs,
            vec!["fig_basalt_comparisona.csv"],
            "prose after the CSV names is ignored"
        );
    }

    #[test]
    fn globs_match_prefix_patterns() {
        assert!(glob_matches(
            "overlay_quality_*.csv",
            "overlay_quality_deg.csv"
        ));
        assert!(glob_matches("a.csv", "a.csv"));
        assert!(!glob_matches("overlay_quality_*.csv", "fig3a.csv"));
        assert!(!glob_matches("a.csv", "b.csv"));
        assert!(glob_matches("*b*.csv", "abc.csv"));
    }

    #[test]
    fn check_row_reports_missing_and_empty() {
        let dir = std::env::temp_dir().join(format!("raptee-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("fig3a.csv"), "round,value\n1,2\n").unwrap();
        std::fs::write(dir.join("fig3b.csv"), "").unwrap();
        let row = Row {
            target: "fig3_brahms_baseline".into(),
            csvs: vec!["fig3a.csv".into(), "fig3b.csv".into(), "fig3c.csv".into()],
        };
        let listing = vec!["fig3a.csv".to_string(), "fig3b.csv".to_string()];
        let problems = check_row(&row, &dir, &listing);
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("fig3b.csv") && problems[0].contains("empty"));
        assert!(problems[1].contains("fig3c.csv") && problems[1].contains("not emitted"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn glob_rows_need_at_least_one_match() {
        let dir = std::env::temp_dir();
        let row = Row {
            target: "overlay_quality".into(),
            csvs: vec!["overlay_quality_*.csv".into()],
        };
        let problems = check_row(&row, &dir, &[]);
        assert_eq!(problems.len(), 1);
        let ok = check_row(&row, &dir, &["overlay_quality_deg.csv".to_string()]);
        assert!(ok.is_empty());
    }

    #[test]
    fn glob_matched_files_must_be_non_empty() {
        let dir = std::env::temp_dir().join(format!("raptee-glob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("overlay_quality_deg.csv"), "h\n1\n").unwrap();
        std::fs::write(dir.join("overlay_quality_path.csv"), "").unwrap();
        let row = Row {
            target: "overlay_quality".into(),
            csvs: vec!["overlay_quality_*.csv".into()],
        };
        let listing = vec![
            "overlay_quality_deg.csv".to_string(),
            "overlay_quality_path.csv".to_string(),
        ];
        let problems = check_row(&row, &dir, &listing);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("overlay_quality_path.csv") && problems[0].contains("empty"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
