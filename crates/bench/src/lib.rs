//! Shared harness for the figure/table reproduction benches.
//!
//! Every bench target regenerates one table or figure of the paper and
//! prints (a) a human-readable aligned table with the same series the
//! paper plots and (b) machine-readable CSV, and writes the CSV under
//! `target/raptee-bench/` relative to the bench working directory
//! (`crates/bench/target/raptee-bench/` under `cargo bench`).
//! EXPERIMENTS.md records paper-vs-measured for
//! each target.
//!
//! ## Scale profiles
//!
//! The paper runs 10,000 nodes × 200 rounds × 10 repetitions per grid
//! point on Grid'5000. That grid is ~700 runs per figure — out of reach
//! for a laptop-class `cargo bench`. The benches therefore default to a
//! reduced profile that preserves every *ratio* the protocol depends on
//! (f, t, α/β/γ, adversary budget per identity) and shrinks `N`, the
//! view size and the repetition count. Select with `RAPTEE_SCALE`:
//!
//! | profile | N | view | rounds | reps | use |
//! |---|---|---|---|---|---|
//! | `tiny` | 150 | 12 | 250 | 1 | smoke test (~seconds/figure) |
//! | `small` (default) | 400 | 16 | 600 | 2 | shape reproduction |
//! | `medium` | 1000 | 24 | 600 | 3 | tighter curves |
//! | `paper` | 10000 | 200 | 200 | 10 | the published setup |
//! | `million` | 1000000 | 16 | 12 | 1 | memory-scaling run (sketched discovery) |
//!
//! The `million` profile only drives `perf_paper_scale` (the figure
//! sweeps would take days at that population); discovery metrics run on
//! the HLL sketches — see the "Scale profiles" section of README.md for
//! the accuracy caveat and memory budget.

use raptee_sim::{runner, AggregatedResult, Scenario};
use raptee_util::series::SeriesTable;
use std::io::Write as _;

/// One scale profile; see the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Profile name.
    pub name: &'static str,
    /// Population size.
    pub n: usize,
    /// View (and sample-list) size.
    pub view: usize,
    /// Rounds per run.
    pub rounds: usize,
    /// Repetitions per grid point.
    pub reps: usize,
}

impl Scale {
    /// Looks up one profile by name (the `RAPTEE_SCALE` values).
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "tiny" => Some(Scale {
                name: "tiny",
                n: 150,
                view: 12,
                rounds: 250,
                reps: 1,
            }),
            "small" => Some(Scale {
                name: "small",
                n: 400,
                view: 16,
                rounds: 600,
                reps: 2,
            }),
            "medium" => Some(Scale {
                name: "medium",
                n: 1000,
                view: 24,
                rounds: 600,
                reps: 3,
            }),
            "paper" => Some(Scale {
                name: "paper",
                n: 10_000,
                view: 200,
                rounds: 200,
                reps: 10,
            }),
            "million" => Some(Scale {
                name: "million",
                n: 1_000_000,
                view: 16,
                rounds: 12,
                reps: 1,
            }),
            _ => None,
        }
    }

    /// Reads `RAPTEE_SCALE` (default `small`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown profile name.
    pub fn from_env() -> Self {
        match std::env::var("RAPTEE_SCALE") {
            Err(_) => Scale::named("small").expect("small profile exists"),
            Ok(name) => Scale::named(&name).unwrap_or_else(|| {
                panic!("unknown RAPTEE_SCALE {name:?} (tiny|small|medium|paper|million)")
            }),
        }
    }

    /// A scenario template at this scale.
    pub fn scenario(&self) -> Scenario {
        Scenario {
            n: self.n,
            view_size: self.view,
            sample_size: self.view,
            rounds: self.rounds,
            tail_window: (self.rounds / 10).max(5),
            ..Scenario::default()
        }
    }
}

/// The Byzantine proportions of the figures' x axes (paper: 10 %–30 %,
/// step 2; the reduced profiles step 4 to bound the grid).
pub fn byzantine_fractions(scale: &Scale) -> Vec<f64> {
    if scale.name == "paper" {
        (0..=10).map(|i| 0.10 + 0.02 * i as f64).collect()
    } else {
        (0..=5).map(|i| 0.10 + 0.04 * i as f64).collect()
    }
}

/// The trusted proportions of Figs. 5–12: {1, 5, 10, 20, 30, 50} %.
pub fn trusted_fractions() -> Vec<f64> {
    vec![0.01, 0.05, 0.10, 0.20, 0.30, 0.50]
}

/// Prints a figure section header.
pub fn header(id: &str, caption: &str, scale: &Scale) {
    println!();
    println!("=== {id} — {caption} ===");
    println!(
        "    scale {}: N={}, view={}, rounds={}, reps={}  (set RAPTEE_SCALE=paper for the published setup)",
        scale.name, scale.n, scale.view, scale.rounds, scale.reps
    );
    println!();
}

/// Prints a table and writes its CSV under `target/raptee-bench/<id>.csv`.
pub fn emit(id: &str, subtitle: &str, table: &SeriesTable) {
    println!("--- {subtitle} ---");
    print!("{table}");
    println!();
    let dir = std::path::Path::new("target").join("raptee-bench");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.csv"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(table.to_csv().as_bytes());
        }
    }
}

/// Runs the three-panel comparison of Figs. 5–9 for one eviction policy:
/// (a) resilience improvement %, (b) discovery-round overhead %,
/// (c) stability-round overhead %, one series per trusted fraction.
pub fn run_resilience_figure(id: &str, caption: &str, eviction: raptee::EvictionPolicy) {
    let scale = Scale::from_env();
    header(id, caption, &scale);
    let mut template = scale.scenario();
    template.eviction = eviction;
    let fs = byzantine_fractions(&scale);
    let ts = trusted_fractions();
    let sweep = runner::sweep_grid(&template, &fs, &ts, scale.reps);

    let mut resilience = SeriesTable::new("f(%)");
    let mut discovery = SeriesTable::new("f(%)");
    let mut stability = SeriesTable::new("f(%)");
    for (f, t, result) in &sweep.grid {
        let base = sweep.baseline(*f).expect("baseline exists for every f");
        let series = format!("t={}%", (t * 100.0).round());
        resilience.insert(
            series.clone(),
            f * 100.0,
            runner::resilience_improvement_pct(base, result),
        );
        if let Some(o) = runner::round_overhead_pct(base.discovery_round, result.discovery_round) {
            discovery.insert(series.clone(), f * 100.0, o);
        }
        if let Some(o) = runner::round_overhead_pct(base.stability_round, result.stability_round) {
            stability.insert(series, f * 100.0, o);
        }
    }
    emit(
        &format!("{id}a"),
        "(a) Byzantine resilience gain (%)",
        &resilience,
    );
    emit(
        &format!("{id}b"),
        "(b) Round overhead for system discovery (%)",
        &discovery,
    );
    emit(
        &format!("{id}c"),
        "(c) Round overhead to reach view stability (%)",
        &stability,
    );
}

/// Runs an identification-attack figure (Figs. 10–11): recall, precision
/// and F1 versus the trusted proportion, one series per eviction rate.
pub fn run_identification_figure(id: &str, caption: &str, byzantine_fraction: f64) {
    let scale = Scale::from_env();
    header(id, caption, &scale);
    let ers = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut recall = SeriesTable::new("t(%)");
    let mut precision = SeriesTable::new("t(%)");
    let mut f1 = SeriesTable::new("t(%)");
    for &er in &ers {
        for &t in &trusted_fractions() {
            let mut s = scale.scenario();
            s.byzantine_fraction = byzantine_fraction;
            s.trusted_fraction = t;
            s.eviction = raptee::EvictionPolicy::Fixed(er);
            s.identification_attack = true;
            let agg = runner::run_repeated(&s, scale.reps);
            let series = format!("ER-{}%", (er * 100.0).round());
            recall.insert(series.clone(), t * 100.0, agg.ident_recall);
            precision.insert(series.clone(), t * 100.0, agg.ident_precision);
            f1.insert(series, t * 100.0, agg.ident_f1);
        }
    }
    emit(&format!("{id}a"), "(a) Recall", &recall);
    emit(&format!("{id}b"), "(b) Precision", &precision);
    emit(&format!("{id}c"), "(c) F1-score", &f1);
}

/// Formats an aggregated result row for free-form prints.
pub fn describe(result: &AggregatedResult) -> String {
    format!(
        "resilience={:.3} discovery={} stability={}",
        result.resilience,
        result
            .discovery_round
            .map_or_else(|| "-".to_string(), |r| format!("{r:.0}")),
        result
            .stability_round
            .map_or_else(|| "-".to_string(), |r| format!("{r:.0}")),
    )
}
