//! Fig. 12 — Precision, recall and F1-score of trusted-node
//! identification under the adaptive eviction rate, one series per
//! Byzantine proportion.

use raptee::EvictionPolicy;
use raptee_bench::{emit, header, trusted_fractions, Scale};
use raptee_sim::runner;
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header(
        "fig12",
        "Trusted-node identification under the adaptive eviction rate",
        &scale,
    );
    let mut recall = SeriesTable::new("t(%)");
    let mut precision = SeriesTable::new("t(%)");
    let mut f1 = SeriesTable::new("t(%)");
    for &f in &[0.10, 0.20, 0.30] {
        for &t in &trusted_fractions() {
            let mut s = scale.scenario();
            s.byzantine_fraction = f;
            s.trusted_fraction = t;
            s.eviction = EvictionPolicy::adaptive();
            s.identification_attack = true;
            let agg = runner::run_repeated(&s, scale.reps);
            let series = format!("f={}%", (f * 100.0).round());
            recall.insert(series.clone(), t * 100.0, agg.ident_recall);
            precision.insert(series.clone(), t * 100.0, agg.ident_precision);
            f1.insert(series, t * 100.0, agg.ident_f1);
        }
    }
    emit("fig12a", "(a) Identification recall", &recall);
    emit("fig12b", "(b) Identification precision", &precision);
    emit("fig12c", "(c) Identification F1-score", &f1);
}
