//! Fig. 10 — Precision, recall and F1-score of trusted-node
//! identification under 10 % of Byzantine nodes, per eviction rate.

fn main() {
    raptee_bench::run_identification_figure(
        "fig10",
        "Trusted-node identification under 10% Byzantine nodes",
        0.10,
    );
}
