//! Micro-benchmarks of the from-scratch cryptographic substrate.
//!
//! Not a paper artifact — an engineering sanity check that the
//! primitives backing the mutual-authentication handshake and the
//! encrypted channels are fast enough that `real_crypto_handshakes`
//! simulations remain practical (the handshake costs 4 HMAC-SHA-256
//! evaluations per pull).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raptee_crypto::chacha20;
use raptee_crypto::hmac::hmac_sha256;
use raptee_crypto::sha256::Sha256;
use raptee_crypto::{Authenticator, SecretKey};
use std::hint::black_box;

fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group.sample_size(30);

    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("sha256/{size}B"), |b| {
            b.iter(|| black_box(Sha256::digest(&data)))
        });
        group.bench_function(format!("chacha20/{size}B"), |b| {
            let key = [7u8; 32];
            let nonce = [1u8; 12];
            b.iter(|| black_box(chacha20::encrypt(&key, &nonce, &data)))
        });
    }

    group.throughput(Throughput::Elements(1));
    group.bench_function("hmac_sha256/64B", |b| {
        let key = [9u8; 32];
        let msg = [3u8; 64];
        b.iter(|| black_box(hmac_sha256(&key, &msg)))
    });

    group.bench_function("mutual_auth_handshake", |b| {
        let alice = Authenticator::new(SecretKey::from_seed(1));
        let bob = Authenticator::new(SecretKey::from_seed(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let mut nonce_a = [0u8; 16];
            nonce_a[..8].copy_from_slice(&n.to_le_bytes());
            let (ch, ap) = alice.initiate(nonce_a);
            let (resp, bp) = bob.respond(&ch, [2; 16]);
            let (oa, confirm) = alice.verify_response(&ap, &resp);
            let ob = bob.verify_confirm(&bp, &confirm);
            black_box((oa, ob))
        })
    });
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
