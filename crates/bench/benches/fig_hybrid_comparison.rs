//! BASALT+TEE hybrid comparison — the protocol-diversity axis PR 5
//! opened, with no published counterpart (the RAPTEE paper hardens
//! Brahms only; the BASALT paper has no TEE treatment).
//!
//! Sweeping the Byzantine proportion under the balanced/force-push
//! attack at an equal per-identity message budget:
//!
//! * **BASALT** — plain ranked hit-counter views (the PR 2 protocol);
//! * **BASALT+TEE** — BASALT plus the waiting-list/TTL anti-poisoning
//!   refinement (hearsay quarantined, admitted at the push-budget rate)
//!   and a `t = 10 %` enclave-attested trusted tier whose mutual
//!   exchanges bypass the waiting lists;
//! * **RAPTEE** — the paper's Brahms+TEE hybrid at the same `t`;
//! * **mixed 50/50** — one run, half RAPTEE / half BASALT+TEE, the
//!   engine's mixed-population mode: panel (b) reports the pollution
//!   *per segment* next to the combined population mean, so the two
//!   hybrids can be compared while coexisting under one adversary
//!   (which force-pushes the BASALT half and balanced-pushes the RAPTEE
//!   half out of one lawful budget).
//!
//! Expected shape: BASALT-family pollution stays near the adversary's
//! population share while Brahms-family pollution grows well past it;
//! the waiting list trades some discovery speed for bounded
//! pull-poisoning, so BASALT+TEE tracks BASALT within a few points
//! (crossing below it as `f` grows and free pull-answer poison
//! dominates), and each half of the mixed run lands near its uniform
//! counterpart. Every trusted node pays the Table I enclave overhead —
//! printed in the header via `SgxOverheadModel::expected_round_overhead`.

use raptee_bench::{byzantine_fractions, emit, header, Scale};
use raptee_sim::{runner, Protocol};
use raptee_tee::SgxOverheadModel;
use raptee_util::series::SeriesTable;

/// Seed-rotation interval for the BASALT-family runs (rounds).
const ROTATION_INTERVAL: usize = 30;
/// Waiting-list TTL of the hybrid (rounds of hearsay quarantine).
const WLIST_TTL: usize = 10;
/// Trusted share of the TEE-equipped runs.
const TRUSTED_FRACTION: f64 = 0.10;

fn main() {
    let scale = Scale::from_env();
    header(
        "fig_hybrid_comparison",
        "BASALT vs BASALT+TEE vs RAPTEE, plus a mixed 50/50 population",
        &scale,
    );
    let model = SgxOverheadModel::paper_table1();
    let fanout = ((0.4 * scale.view as f64).round() as usize).max(1);
    println!(
        "    trusted nodes pay ~{} cycles/round of enclave overhead (Table I means: {fanout} pulls + {fanout} pushes + 1 trusted exchange)",
        model.expected_round_overhead(fanout, fanout, 1)
    );
    println!();

    let mut resilience = SeriesTable::new("f(%)");
    let mut mixed_panel = SeriesTable::new("f(%)");
    for &f in &byzantine_fractions(&scale) {
        let mut template = scale.scenario();
        template.byzantine_fraction = f;
        template.trusted_fraction = TRUSTED_FRACTION;

        let basalt = runner::run_repeated(&template.basalt_variant(ROTATION_INTERVAL), scale.reps);
        let hybrid = runner::run_repeated(
            &template.basalt_tee_variant(ROTATION_INTERVAL, WLIST_TTL),
            scale.reps,
        );
        let raptee = runner::run_repeated(&template, scale.reps);
        let mixed_scenario = template.half_and_half(
            Protocol::Raptee,
            Protocol::BasaltTee {
                view_size: template.view_size,
                rotation_interval: ROTATION_INTERVAL,
                wlist_ttl: WLIST_TTL,
            },
        );
        let mixed = runner::run_repeated(&mixed_scenario, scale.reps);

        let x = f * 100.0;
        resilience.insert("BASALT", x, basalt.resilience * 100.0);
        resilience.insert("BASALT+TEE t=10%", x, hybrid.resilience * 100.0);
        resilience.insert("RAPTEE t=10%", x, raptee.resilience * 100.0);
        mixed_panel.insert("mixed combined", x, mixed.resilience * 100.0);
        for seg in &mixed.segments {
            mixed_panel.insert(
                format!("mixed {} half", seg.protocol.label()),
                x,
                seg.resilience * 100.0,
            );
        }
    }
    emit(
        "fig_hybrid_comparisona",
        "(a) Converged Byzantine IDs in correct views (%), uniform populations",
        &resilience,
    );
    emit(
        "fig_hybrid_comparisonb",
        "(b) The 50% RAPTEE / 50% BASALT+TEE mixed run: per-segment and combined pollution (%)",
        &mixed_panel,
    );
}
