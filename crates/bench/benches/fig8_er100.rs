//! Fig. 8 — RAPTEE resilience improvement and round overheads under a
//! 100 % eviction rate (trusted nodes ignore every untrusted pull).

fn main() {
    raptee_bench::run_resilience_figure(
        "fig8",
        "RAPTEE vs Brahms under a 100% eviction rate",
        raptee::EvictionPolicy::Fixed(1.0),
    );
}
