//! Asynchrony figure — what the lockstep round model hides.
//!
//! The paper's experiments (and every figure bench so far) run the
//! synchronous round engine. This bench puts the same RAPTEE scenario
//! on the event-driven substrate and sweeps the Byzantine proportion
//! under three deliveries:
//!
//! * **rounds** — the synchronous baseline;
//! * **events lognormal** — log-normal per-link latency with
//!   desynchronised round timers (a realistic WAN tail: pushes and pull
//!   answers slide across round boundaries);
//! * **events partition** — a clean cut through the population for a
//!   fifth of the run, healing mid-experiment; held messages release as
//!   one burst.
//!
//! Panel (a): converged Byzantine in-view share (%) per delivery model.
//! Panel (b): the per-round pollution series of the round model vs the
//! partitioned event run — the cut, the divergence of the two halves
//! and the heal-burst recovery are visible only under the event model.

use raptee_bench::{byzantine_fractions, emit, header, Scale};
use raptee_sim::{runner, EventNetConfig, LatencyModel, PartitionWindow, Scenario};
use raptee_util::series::SeriesTable;

/// Trusted tier of every RAPTEE run (the paper's t = 10 %).
const TRUSTED: f64 = 0.10;

/// Log-normal WAN latency: median e^6.2 ≈ 493 ticks ≈ half a round,
/// σ = 0.8, capped at five rounds; round timers jittered by up to a
/// fifth of a round.
fn lognormal_cfg() -> EventNetConfig {
    EventNetConfig {
        latency: LatencyModel::LogNormal {
            mu: 6.2,
            sigma: 0.8,
            cap: 5_000,
        },
        jitter: 200,
        ..EventNetConfig::default()
    }
}

/// Uniform low latency plus one cut through the middle of the
/// population, active for a fifth of the run starting at its first
/// sixth (scales with the profile's round budget).
fn partition_cfg(scenario: &Scenario) -> EventNetConfig {
    let start = scenario.rounds / 6;
    EventNetConfig {
        latency: LatencyModel::Uniform { min: 50, max: 600 },
        partitions: vec![PartitionWindow {
            start,
            end: start + scenario.rounds / 5,
            boundary: scenario.n / 2,
        }],
        ..EventNetConfig::default()
    }
}

fn main() {
    let scale = Scale::from_env();
    header(
        "fig_asynchrony",
        "RAPTEE under event-driven delivery: latency tails and a partition-and-heal",
        &scale,
    );

    let mut resilience = SeriesTable::new("f(%)");
    for &f in &byzantine_fractions(&scale) {
        let mut template = scale.scenario();
        template.byzantine_fraction = f;
        template.trusted_fraction = TRUSTED;

        let rounds = runner::run_repeated(&template, scale.reps);
        let latency = runner::run_repeated(&template.with_network(lognormal_cfg()), scale.reps);
        let partition =
            runner::run_repeated(&template.with_network(partition_cfg(&template)), scale.reps);

        let x = f * 100.0;
        resilience.insert("rounds", x, rounds.resilience * 100.0);
        resilience.insert("events lognormal", x, latency.resilience * 100.0);
        resilience.insert("events partition", x, partition.resilience * 100.0);
    }
    emit(
        "fig_asynchronya",
        "(a) Converged Byzantine IDs in correct views (%) per delivery model",
        &resilience,
    );

    let mut template = scale.scenario();
    template.trusted_fraction = TRUSTED;
    let cfg = partition_cfg(&template);
    let window = cfg.partitions[0];
    let round_run = runner::run_scenario(template.clone());
    let event_run = runner::run_scenario(template.with_network(cfg));
    let mut series = SeriesTable::new("round");
    for (r, v) in round_run.byz_share_series.iter().enumerate() {
        series.insert("rounds", r as f64, v * 100.0);
    }
    for (r, v) in event_run.byz_share_series.iter().enumerate() {
        series.insert("events partition", r as f64, v * 100.0);
    }
    if let Some(net) = event_run.net {
        println!(
            "    partition run (cut rounds {}..{}): held {} msgs, released {}, refused {} pulls, {} late deliveries",
            window.start,
            window.end,
            net.partition_held,
            net.partition_released,
            net.refused_pulls,
            net.late_deliveries,
        );
    }
    emit(
        "fig_asynchronyb",
        "(b) Pollution per round: the cut, the halves diverging, the heal burst",
        &series,
    );
}
