//! Engine throughput bench: times full simulation runs and emits the
//! tracked `BENCH_paper_scale.json` at the repository root.
//!
//! Two profiles:
//!
//! * **tiny control** — always runs (seconds): N=150, view 12, 250
//!   rounds. This is the CI smoke target; it exists so the bench binary
//!   and the JSON emission path can never bit-rot.
//! * **paper** — the published setup (`Scenario::paper_scale()`:
//!   N=10,000, view 200, 200 rounds), one timed run. Expensive; opt in
//!   with `RAPTEE_SCALE=paper` (matching the figure benches).
//!
//! The JSON records wall-clock, rounds/sec, and peak RSS when the
//! platform exposes it (`/proc/self/status` VmHWM on Linux). Only a
//! full `RAPTEE_SCALE=paper` invocation rewrites the committed
//! `BENCH_paper_scale.json` (the measurement that matters for the
//! trajectory); the tiny control prints its JSON to stdout without
//! touching the artifact, so CI smoke runs never dirty the tree or
//! clobber a recorded paper-scale measurement.

use raptee_sim::{Protocol, Scenario, Simulation};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    profile: &'static str,
    n: usize,
    view: usize,
    rounds: usize,
    protocol: &'static str,
    wall_s: f64,
    rounds_per_sec: f64,
    resilience: f64,
}

fn time_run(profile: &'static str, protocol: &'static str, scenario: Scenario) -> Measurement {
    let n = scenario.n;
    let view = scenario.view_size;
    let rounds = scenario.rounds;
    let start = Instant::now();
    let result = Simulation::new(scenario).run();
    let wall_s = start.elapsed().as_secs_f64();
    Measurement {
        profile,
        n,
        view,
        rounds,
        protocol,
        wall_s,
        rounds_per_sec: rounds as f64 / wall_s,
        resilience: result.resilience,
    }
}

/// Peak resident set size in KiB, read from `/proc/self/status` (Linux
/// only; `None` elsewhere).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

fn tiny_control() -> Scenario {
    Scenario {
        n: 150,
        view_size: 12,
        sample_size: 12,
        rounds: 250,
        tail_window: 25,
        seed: 0xBE7C,
        ..Scenario::default()
    }
}

fn emit_json(measurements: &[Measurement], write_artifact: bool) {
    let mut json = String::from("{\n  \"bench\": \"perf_paper_scale\",\n  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"profile\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \"view\": {}, \"rounds\": {}, \"wall_s\": {:.3}, \"rounds_per_sec\": {:.3}, \"resilience\": {:.6}}}",
            m.profile, m.protocol, m.n, m.view, m.rounds, m.wall_s, m.rounds_per_sec, m.resilience
        );
        json.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    match peak_rss_kib() {
        Some(kib) => {
            let _ = writeln!(json, "  \"peak_rss_kib\": {kib}");
        }
        None => json.push_str("  \"peak_rss_kib\": null\n"),
    }
    json.push_str("}\n");

    if write_artifact {
        // crates/bench -> workspace root.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let path = root.join("BENCH_paper_scale.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => println!("could not write {}: {e}", path.display()),
        }
    } else {
        println!("(tiny control only: artifact untouched; set RAPTEE_SCALE=paper to rewrite it)");
    }
    print!("{json}");
}

fn main() {
    let full = std::env::var("RAPTEE_SCALE").as_deref() == Ok("paper");
    println!("=== perf_paper_scale — engine throughput ===");
    println!(
        "    tiny control always runs; set RAPTEE_SCALE=paper for the full N=10,000 measurement"
    );
    println!();

    let mut measurements = Vec::new();

    let tiny = time_run("tiny", "raptee", tiny_control());
    println!(
        "tiny   : N={:<6} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s",
        tiny.n, tiny.view, tiny.rounds, tiny.wall_s, tiny.rounds_per_sec
    );
    measurements.push(tiny);

    let basalt_tiny = time_run("tiny", "basalt", tiny_control().basalt_variant(15));
    println!(
        "tiny   : N={:<6} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s (BASALT)",
        basalt_tiny.n,
        basalt_tiny.view,
        basalt_tiny.rounds,
        basalt_tiny.wall_s,
        basalt_tiny.rounds_per_sec
    );
    measurements.push(basalt_tiny);

    if full {
        let mut scenario = Scenario::paper_scale();
        scenario.protocol = Protocol::Raptee;
        let paper = time_run("paper", "raptee", scenario);
        println!(
            "paper  : N={:<6} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s",
            paper.n, paper.view, paper.rounds, paper.wall_s, paper.rounds_per_sec
        );
        measurements.push(paper);
    } else {
        println!("paper  : skipped (RAPTEE_SCALE != paper)");
    }

    println!();
    emit_json(&measurements, full);
}
