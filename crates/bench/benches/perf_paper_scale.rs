//! Engine throughput bench: times full simulation runs and emits the
//! tracked `BENCH_paper_scale.json` at the repository root.
//!
//! Three profiles:
//!
//! * **tiny control** — always runs (seconds): N=150, view 12, 250
//!   rounds. This is the CI smoke target; it exists so the bench binary
//!   and the JSON emission path can never bit-rot.
//! * **paper** — the published setup (`Scenario::paper_scale()`:
//!   N=10,000, view 200, 200 rounds), one timed run. Expensive; opt in
//!   with `RAPTEE_SCALE=paper` (matching the figure benches).
//! * **million** — the memory-scaling run (`Scale::named("million")`:
//!   N=1,000,000, view 16, 12 rounds), one timed run with HLL-sketched
//!   discovery metrics. Opt in with `RAPTEE_SCALE=million`.
//!
//! The JSON records wall-clock, rounds/sec, the intra-run worker count
//! (`threads`, the engine's `RAYON_NUM_THREADS`-governed parallelism),
//! the git revision, and peak RSS when the platform exposes it
//! (`/proc/self/status` VmHWM on Linux). Only a full
//! `RAPTEE_SCALE=paper` invocation rewrites the committed
//! `BENCH_paper_scale.json` (the measurement that matters for the
//! trajectory); the tiny control prints its JSON to stdout without
//! touching the artifact, so CI smoke runs never dirty the tree or
//! clobber a recorded paper-scale measurement.
//!
//! Each paper- or million-scale rewrite **appends** to the artifact's
//! `history` array (timestamp, git revision, profile, thread count,
//! wall-clock, rounds/sec, peak RSS) instead of overwriting it, so the
//! perf trajectory across PRs stays machine-readable.

use raptee_bench::Scale;
use raptee_sim::{Protocol, Scenario, Simulation};
use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Measurement {
    profile: &'static str,
    n: usize,
    view: usize,
    rounds: usize,
    protocol: &'static str,
    wall_s: f64,
    rounds_per_sec: f64,
    resilience: f64,
}

fn time_run(profile: &'static str, protocol: &'static str, scenario: Scenario) -> Measurement {
    let n = scenario.n;
    let view = scenario.view_size;
    let rounds = scenario.rounds;
    let start = Instant::now();
    let result = Simulation::new(scenario).run();
    let wall_s = start.elapsed().as_secs_f64();
    Measurement {
        profile,
        n,
        view,
        rounds,
        protocol,
        wall_s,
        rounds_per_sec: rounds as f64 / wall_s,
        resilience: result.resilience,
    }
}

/// Peak resident set size in KiB, read from `/proc/self/status` (Linux
/// only; `None` elsewhere).
///
/// Caveats (recorded in the JSON as `peak_rss_note`): VmHWM is the
/// whole bench *process* high-water mark — it includes the tiny-control
/// runs that precede the paper run, allocator retention (freed blocks
/// the allocator has not returned to the kernel), and is
/// platform/allocator-dependent (glibc malloc here). It is an upper
/// bound on the engine's live working set, which is the honest
/// direction for a budget check.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// The short git revision (`-dirty` suffixed when the work tree has
/// uncommitted changes), when the bench runs inside a work tree.
fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--abbrev=9"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// The existing `history` array entries of the committed artifact (the
/// text between `"history": [` and its closing `]`), so a rewrite
/// appends instead of clobbering. Pre-history artifacts (≤ PR 3) stored
/// a single paper run at the top level; that run is migrated into the
/// first history entry when recognisable.
fn existing_history(artifact: &str) -> Vec<String> {
    if let Some(start) = artifact.find("\"history\": [") {
        let body = &artifact[start + "\"history\": [".len()..];
        if let Some(end) = body.find(']') {
            return body[..end]
                .split_terminator("},")
                .map(|e| {
                    let e = e.trim().trim_end_matches('}');
                    format!("{e}}}")
                })
                .filter(|e| e.len() > 2)
                .collect();
        }
    }
    // Legacy single-run artifact: synthesise the entry from the tracked
    // paper-profile line so PR 3's 333 s measurement stays on record.
    for line in artifact.lines() {
        if line.contains("\"profile\": \"paper\"") {
            let field = |key: &str| {
                let tag = format!("\"{key}\": ");
                let rest = &line[line.find(&tag)? + tag.len()..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                Some(rest[..end].trim().to_string())
            };
            if let (Some(wall), Some(rps)) = (field("wall_s"), field("rounds_per_sec")) {
                let rss = artifact
                    .lines()
                    .find_map(|l| l.trim().strip_prefix("\"peak_rss_kib\": "))
                    .map(|v| v.trim().to_string())
                    .unwrap_or_else(|| "null".into());
                return vec![format!(
                    "{{\"timestamp\": null, \"git_rev\": null, \"threads\": 1, \
                     \"wall_s\": {wall}, \"rounds_per_sec\": {rps}, \"peak_rss_kib\": {rss}}}"
                )];
            }
        }
    }
    Vec::new()
}

fn tiny_control() -> Scenario {
    Scenario {
        n: 150,
        view_size: 12,
        sample_size: 12,
        rounds: 250,
        tail_window: 25,
        seed: 0xBE7C,
        ..Scenario::default()
    }
}

/// Pinned golden resilience of the RAPTEE tiny control, as exact f64
/// bits. The engine is bit-deterministic at every thread count, so this
/// can *never* be timing-flaky: a mismatch means the engine's behaviour
/// changed, not that the runner was slow. Behaviour-changing PRs must
/// re-pin it alongside the `tests/determinism.rs` goldens.
const TINY_RAPTEE_RESILIENCE_BITS: u64 = 0x3fda04118f49758f;
/// Same guard for the BASALT tiny control.
const TINY_BASALT_RESILIENCE_BITS: u64 = 0x3fc41d06a6515d1c;

/// Asserts a tiny-control resilience against its pinned golden bits.
fn assert_tiny_golden(m: &Measurement, golden_bits: u64) {
    assert_eq!(
        m.resilience.to_bits(),
        golden_bits,
        "{} tiny control resilience {} (bits {:#018x}) diverged from the pinned golden \
         {:#018x} — the engine's behaviour changed; re-pin together with the \
         tests/determinism.rs goldens if that was intentional",
        m.protocol,
        m.resilience,
        m.resilience.to_bits(),
        golden_bits,
    );
}

fn emit_json(measurements: &[Measurement], write_artifact: bool) {
    let threads = rayon::current_num_threads();
    let rev = git_rev();
    // Dirty-tree guard: a paper-scale measurement recorded from an
    // uncommitted work tree is not attributable to any revision (the
    // PR 4-era history entry measured on a pre-commit tree taught us
    // this). Refuse to touch the committed artifact unless the operator
    // explicitly opts in — and then flag the entry prominently.
    let dirty = rev.as_deref().is_some_and(|r| r.ends_with("-dirty"));
    // Only a truthy value opts in — `RAPTEE_BENCH_ALLOW_DIRTY=0` (or
    // empty) left over from scripting must not bypass the guard.
    let allow_dirty = std::env::var("RAPTEE_BENCH_ALLOW_DIRTY")
        .is_ok_and(|v| !v.is_empty() && v != "0" && v != "false");
    let write_artifact = if write_artifact && dirty && !allow_dirty {
        println!(
            "REFUSING to rewrite BENCH_paper_scale.json: the work tree is dirty ({}), so this \
             measurement cannot be attributed to a commit. Commit (or stash) first, or set \
             RAPTEE_BENCH_ALLOW_DIRTY=1 to record it flagged as \"dirty\": true.",
            rev.as_deref().unwrap_or("?")
        );
        false
    } else {
        write_artifact
    };
    let rev_json = rev
        .as_deref()
        .map_or_else(|| "null".to_string(), |r| format!("\"{r}\""));
    let peak = peak_rss_kib();
    let peak_json = peak.map_or_else(|| "null".to_string(), |kib| kib.to_string());

    let mut json = String::from("{\n  \"bench\": \"perf_paper_scale\",\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"git_rev\": {rev_json},");
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"profile\": \"{}\", \"protocol\": \"{}\", \"n\": {}, \"view\": {}, \"rounds\": {}, \"wall_s\": {:.3}, \"rounds_per_sec\": {:.3}, \"resilience\": {:.6}}}",
            m.profile, m.protocol, m.n, m.view, m.rounds, m.wall_s, m.rounds_per_sec, m.resilience
        );
        json.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"peak_rss_kib\": {peak_json},");
    json.push_str(
        "  \"peak_rss_note\": \"VmHWM of the whole bench process (Linux): includes the \
         tiny-control runs and allocator retention; glibc malloc; an upper bound on the \
         engine's live set; null on platforms without /proc\",\n",
    );

    // The history array is append-only across paper-scale rewrites: the
    // perf trajectory over PRs stays machine-readable.
    // crates/bench -> workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_paper_scale.json");
    let mut history = std::fs::read_to_string(&path)
        .map(|old| existing_history(&old))
        .unwrap_or_default();
    if let Some(tracked) = measurements
        .iter()
        .find(|m| m.profile == "paper" || m.profile == "million")
    {
        if write_artifact {
            let timestamp = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs().to_string())
                .unwrap_or_else(|_| "null".into());
            // A dirty-tree entry (operator override) is flagged so the
            // trajectory reader can never mistake it for a committed
            // revision's number. Pre-million entries carry no profile
            // field and are implicitly paper-scale.
            let dirty_field = if dirty { ", \"dirty\": true" } else { "" };
            let profile_field = if tracked.profile == "paper" {
                String::new()
            } else {
                format!(", \"profile\": \"{}\"", tracked.profile)
            };
            history.push(format!(
                "{{\"timestamp\": {timestamp}, \"git_rev\": {rev_json}, \"threads\": {threads}, \
                 \"wall_s\": {:.3}, \"rounds_per_sec\": {:.3}, \"peak_rss_kib\": {peak_json}\
                 {profile_field}{dirty_field}}}",
                tracked.wall_s, tracked.rounds_per_sec
            ));
        }
    }
    json.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let _ = write!(json, "    {entry}");
        json.push_str(if i + 1 < history.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if write_artifact {
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => println!("could not write {}: {e}", path.display()),
        }
    } else {
        println!("(tiny control only: artifact untouched; set RAPTEE_SCALE=paper to rewrite it)");
    }
    print!("{json}");
}

fn main() {
    let scale_env = std::env::var("RAPTEE_SCALE").unwrap_or_default();
    let full = scale_env == "paper";
    let million = scale_env == "million";
    println!("=== perf_paper_scale — engine throughput ===");
    println!(
        "    tiny control always runs; set RAPTEE_SCALE=paper for the full N=10,000 \
         measurement, RAPTEE_SCALE=million for the N=1,000,000 sketched run"
    );
    println!();

    let mut measurements = Vec::new();

    let tiny = time_run("tiny", "raptee", tiny_control());
    println!(
        "tiny   : N={:<6} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s",
        tiny.n, tiny.view, tiny.rounds, tiny.wall_s, tiny.rounds_per_sec
    );
    assert_tiny_golden(&tiny, TINY_RAPTEE_RESILIENCE_BITS);
    measurements.push(tiny);

    let basalt_tiny = time_run("tiny", "basalt", tiny_control().basalt_variant(15));
    println!(
        "tiny   : N={:<6} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s (BASALT)",
        basalt_tiny.n,
        basalt_tiny.view,
        basalt_tiny.rounds,
        basalt_tiny.wall_s,
        basalt_tiny.rounds_per_sec
    );
    assert_tiny_golden(&basalt_tiny, TINY_BASALT_RESILIENCE_BITS);
    measurements.push(basalt_tiny);
    println!("tiny   : resilience goldens match (bit-exact)");

    if full {
        let mut scenario = Scenario::paper_scale();
        scenario.protocol = Protocol::Raptee;
        let paper = time_run("paper", "raptee", scenario);
        println!(
            "paper  : N={:<6} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s",
            paper.n, paper.view, paper.rounds, paper.wall_s, paper.rounds_per_sec
        );
        measurements.push(paper);
    } else {
        println!("paper  : skipped (RAPTEE_SCALE != paper)");
    }

    if million {
        let profile = Scale::named("million").expect("million profile exists");
        let mut scenario = profile.scenario();
        scenario.protocol = Protocol::Raptee;
        assert!(
            scenario.sketch_discovery(),
            "the million profile must auto-select sketched discovery"
        );
        let run = time_run("million", "raptee", scenario);
        println!(
            "million: N={:<7} view={:<4} rounds={:<4} wall={:>8.2}s  {:>8.1} rounds/s",
            run.n, run.view, run.rounds, run.wall_s, run.rounds_per_sec
        );
        measurements.push(run);
    } else {
        println!("million: skipped (RAPTEE_SCALE != million)");
    }

    println!();
    emit_json(&measurements, full || million);
}
