//! Fig. 3 — Brahms resilience, time to discovery and time to stability
//! under Byzantine faults.
//!
//! The paper's baseline: plain Brahms (α = β = 0.4, γ = 0.2), balanced
//! push attack plus fully-Byzantine pull answers, sweeping the Byzantine
//! proportion from 10 % to 30 %. Left panel: percentage of Byzantine IDs
//! in the views of correct nodes. Right panel: rounds to discovery and to
//! stability.

use raptee_bench::{byzantine_fractions, emit, header, Scale};
use raptee_sim::runner;
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header("fig3", "Brahms baseline under Byzantine faults", &scale);
    let mut resilience = SeriesTable::new("f(%)");
    let mut rounds = SeriesTable::new("f(%)");
    for &f in &byzantine_fractions(&scale) {
        let mut s = scale.scenario().brahms_baseline();
        s.byzantine_fraction = f;
        let agg = runner::run_repeated(&s, scale.reps);
        resilience.insert("Byzantine IDs (%)", f * 100.0, agg.resilience * 100.0);
        if let Some(d) = agg.discovery_round {
            rounds.insert("Discovery", f * 100.0, d);
        }
        if let Some(st) = agg.stability_round {
            rounds.insert("Stability", f * 100.0, st);
        }
    }
    emit(
        "fig3a",
        "Resilience: Byzantine IDs in correct views (%)",
        &resilience,
    );
    emit("fig3b", "Rounds to discovery and stability", &rounds);
}
