//! Ablation — contribution of trusted communications (the half-view
//! swap) versus Byzantine eviction alone.
//!
//! DESIGN.md §5: RAPTEE has two trusted-node mechanisms. This bench runs
//! the adaptive configuration with the swap enabled and disabled
//! (eviction kept) and reports the resilience improvement each achieves
//! over Brahms.

use raptee_bench::{byzantine_fractions, emit, header, Scale};
use raptee_sim::runner;
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header(
        "ablation_swap",
        "Trusted view-swap on/off (t = 10%)",
        &scale,
    );
    let mut table = SeriesTable::new("f(%)");
    for &f in &byzantine_fractions(&scale) {
        let mut base = scale.scenario().brahms_baseline();
        base.byzantine_fraction = f;
        let baseline = runner::run_repeated(&base, scale.reps);
        for (label, swap) in [("swap+eviction", true), ("eviction-only", false)] {
            let mut s = scale.scenario();
            s.byzantine_fraction = f;
            s.trusted_fraction = 0.10;
            s.trusted_swap = swap;
            let agg = runner::run_repeated(&s, scale.reps);
            table.insert(
                label,
                f * 100.0,
                runner::resilience_improvement_pct(&baseline, &agg),
            );
        }
    }
    emit("ablation_swap", "Resilience improvement (%)", &table);
}
