//! Audit figure — identification vs verifiable accountability.
//!
//! The paper's identification attack (figs 10–12) shows what a
//! *statistical* classifier can do: the adversary (or a defender)
//! guesses trusted nodes from behaviour, trading precision against
//! recall. The PR 9 audit layer answers with *proof*: trusted nodes
//! commit merkle roots of their per-round views, a challenger samples
//! openings from a dedicated randomness beacon, and only a commitment
//! inconsistency convicts. This bench sweeps the audit budget
//! (challenges per round) and reports:
//!
//! * Panel (a): mean detection latency (rounds from a Byzantine node
//!   becoming active to its conviction) — monotonically decreasing in
//!   the budget.
//! * Panel (b): Byzantine nodes detected and false accusations per run
//!   — the latter pinned at zero across the whole sweep, including a
//!   hostile rerun under steady churn plus a mid-run partition on the
//!   event network (unavailability only ever suspects; suspicion
//!   decays).

use raptee_bench::{emit, header, Scale};
use raptee_sim::{
    runner, AuditConfig, ChurnSchedule, EventNetConfig, LatencyModel, PartitionWindow,
    RejoinPolicy, Scenario,
};
use raptee_util::series::SeriesTable;

/// Trusted tier of every run (the paper's t = 10 %).
const TRUSTED: f64 = 0.10;

/// Audit budgets of the x axis (challenges per round).
const BUDGETS: [usize; 5] = [1, 2, 4, 8, 16];

fn audit_template(scale: &Scale) -> Scenario {
    let mut template = scale.scenario();
    template.byzantine_fraction = 0.10;
    template.trusted_fraction = TRUSTED;
    template
}

/// The same template under fire: steady crash/restart churn, message
/// loss, and a partition across a third of the run on the event engine.
fn hostile_template(scale: &Scale) -> Scenario {
    let mut s = audit_template(scale);
    s.message_loss = 0.05;
    s.churn = ChurnSchedule::steady(0.01, 0.4);
    s.churn.rejoin = RejoinPolicy::Warm;
    let start = s.rounds / 4;
    let boundary = s.n / 2;
    s.with_network(EventNetConfig {
        latency: LatencyModel::Uniform { min: 50, max: 400 },
        round_ticks: 1000,
        jitter: 100,
        partitions: vec![PartitionWindow {
            start,
            end: start + s.rounds / 3,
            boundary,
        }],
        ..EventNetConfig::default()
    })
}

fn main() {
    let scale = Scale::from_env();
    header(
        "fig_audit",
        "Verifiable audits: detection latency and accusations vs audit budget",
        &scale,
    );

    let mut latency = SeriesTable::new("budget(audits/round)");
    let mut verdicts = SeriesTable::new("budget(audits/round)");
    let mut last_clean_latency = f64::INFINITY;
    for &budget in &BUDGETS {
        let x = budget as f64;
        for (label, template) in [
            ("clean", audit_template(&scale)),
            ("churn+partition", hostile_template(&scale)),
        ] {
            let mut s = template;
            s.audit = Some(AuditConfig::with_budget(budget));
            let agg = runner::run_repeated(&s, scale.reps);
            if let Some(l) = agg.audit_detection_latency {
                latency.insert(format!("detection latency {label} (rounds)"), x, l);
                if label == "clean" {
                    assert!(
                        l <= last_clean_latency,
                        "detection latency must fall as the budget grows: \
                         {l:.1} rounds at budget {budget} after {last_clean_latency:.1}"
                    );
                    last_clean_latency = l;
                }
            }
            let accused = agg.audit_false_accusations.unwrap_or(0.0);
            verdicts.insert(
                format!("convictions {label}"),
                x,
                agg.audit_convictions.unwrap_or(0.0),
            );
            verdicts.insert(format!("false accusations {label}"), x, accused);
            assert!(
                accused == 0.0,
                "correct nodes must never be convicted ({label}, budget {budget}): {accused}"
            );
        }
    }
    emit(
        "fig_audita",
        "(a) Mean detection latency (rounds to conviction) vs audit budget",
        &latency,
    );
    emit(
        "fig_auditb",
        "(b) Convictions and false accusations (pinned at 0) vs audit budget",
        &verdicts,
    );
}
