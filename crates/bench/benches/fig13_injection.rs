//! Fig. 13 — Corrupted (view-poisoned) trusted-node injection.
//!
//! The adversary deploys genuine SGX nodes bootstrapped inside a
//! Byzantine-only network (views 100 % poisoned) and releases them into
//! the real system. One panel per base trusted proportion
//! t ∈ {1, 10, 30} %; each panel plots the resilience improvement versus
//! f, with series for the injected proportion {+1, +5, +10, +20, +30} %
//! and the unattacked baseline.

use raptee_bench::{byzantine_fractions, emit, header, Scale};
use raptee_sim::runner;
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header("fig13", "View-poisoned trusted node injection", &scale);
    let injected = [0.0, 0.01, 0.05, 0.10, 0.20, 0.30];
    // Reduced grids keep the full-figure run affordable; the paper x
    // axis (10..30 step 2) is active under RAPTEE_SCALE=paper.
    let fs = byzantine_fractions(&scale);
    for &t in &[0.01, 0.10, 0.30] {
        let mut panel = SeriesTable::new("f(%)");
        for &f in &fs {
            let mut base = scale.scenario().brahms_baseline();
            base.byzantine_fraction = f;
            let baseline = runner::run_repeated(&base, scale.reps);
            for &inj in &injected {
                let mut s = scale.scenario();
                s.byzantine_fraction = f;
                s.trusted_fraction = t;
                s.injected_poisoned_fraction = inj;
                let agg = runner::run_repeated(&s, scale.reps);
                let series = if inj == 0.0 {
                    format!("t={}%", (t * 100.0).round())
                } else {
                    format!("+{}%", (inj * 100.0).round())
                };
                panel.insert(
                    series,
                    f * 100.0,
                    runner::resilience_improvement_pct(&baseline, &agg),
                );
            }
        }
        let id = format!("fig13_t{}", (t * 100.0).round());
        emit(
            &id,
            &format!(
                "Attack on a system with t = {}% (resilience improvement %)",
                (t * 100.0).round()
            ),
            &panel,
        );
    }
}
