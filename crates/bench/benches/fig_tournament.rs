//! Protocol tournament — every protocol family against every adversary
//! play, one CSV grid. No published counterpart: the RAPTEE paper
//! evaluates one hardened protocol under one adversary; this bench
//! crosses the repo's five families (Brahms, RAPTEE, BASALT, LIFT,
//! Honeybee) with the four attack modes (balanced, force-push,
//! targeted, adaptive) at a fixed Byzantine share.
//!
//! Attack semantics per family:
//!
//! * **balanced** — the family's baseline planner: random-ID balanced
//!   pushes against the Brahms family, distinct-identity force pushes
//!   against the ranked families (so balanced ≡ force-push there; the
//!   column is kept to make the grid rectangular and the Brahms-family
//!   contrast visible);
//! * **force-push** — the round-robin distinct-identity coverage play
//!   for every family;
//! * **targeted** — 75 % of the budget focused on a 10 % victim set;
//! * **adaptive** — the UCB bandit coordinator re-aims the same lawful
//!   budget each round over the (segment, strategy) arms by observed
//!   pollution yield.
//!
//! Expected shape: ranked families (BASALT/LIFT/Honeybee) hold
//! pollution near the adversary's population share in every column
//! while the Brahms family degrades under its stronger plays, and the
//! adaptive column converges onto each family's best static attack —
//! asserted in-bench: on at least one protocol, adaptive must match or
//! beat every static column (within a small bandit-warm-up tolerance).

use raptee_bench::{emit, header, Scale};
use raptee_sim::{runner, AdversaryMode, AttackStrategy, Scenario};
use raptee_util::series::SeriesTable;

/// The tournament's fixed Byzantine share (mid-range of the figures).
const BYZANTINE_FRACTION: f64 = 0.2;
/// Trusted share of the RAPTEE run (the TEE-equipped family).
const TRUSTED_FRACTION: f64 = 0.10;
/// BASALT seed-rotation interval (rounds).
const ROTATION_INTERVAL: usize = 30;
/// LIFT hub-score fade interval (rounds).
const FADE_INTERVAL: usize = 20;
/// Honeybee verified-walk hop budget.
const WALK_LENGTH: usize = 5;
/// Warm-up slack for the adaptive column: the bandit spends its first
/// rounds exploring all arms, so it may trail its best static arm by a
/// small margin on short runs (percentage points of pollution).
const ADAPTIVE_TOLERANCE_PP: f64 = 1.0;

/// The static attack columns, in emit order.
const STATIC_ATTACKS: [(&str, AttackStrategy); 3] = [
    ("balanced", AttackStrategy::Balanced),
    ("force-push", AttackStrategy::ForcePush),
    (
        "targeted",
        AttackStrategy::Targeted {
            victim_fraction: 0.1,
            focus: 0.75,
        },
    ),
];

fn protocols(template: &Scenario) -> Vec<(&'static str, Scenario)> {
    let mut raptee = template.clone();
    raptee.trusted_fraction = TRUSTED_FRACTION;
    vec![
        ("brahms", template.brahms_baseline()),
        ("raptee", raptee),
        ("basalt", template.basalt_variant(ROTATION_INTERVAL)),
        ("lift", template.lift_variant(FADE_INTERVAL)),
        ("honeybee", template.honeybee_variant(WALK_LENGTH)),
    ]
}

fn main() {
    let scale = Scale::from_env();
    header(
        "fig_tournament",
        "5 protocol families x 4 adversary plays, pollution (%)",
        &scale,
    );
    let mut template = scale.scenario();
    template.byzantine_fraction = BYZANTINE_FRACTION;
    template.trusted_fraction = 0.0;

    // x axis = attack column index; one series per protocol family.
    let mut grid = SeriesTable::new("attack(0=balanced,1=force-push,2=targeted,3=adaptive)");
    let mut adaptive_wins = Vec::new();
    for (name, scenario) in protocols(&template) {
        let mut best_static = f64::NEG_INFINITY;
        for (col, (_, attack)) in STATIC_ATTACKS.iter().enumerate() {
            let mut s = scenario.clone();
            s.attack = *attack;
            let agg = runner::run_repeated(&s, scale.reps);
            best_static = best_static.max(agg.resilience);
            grid.insert(name, col as f64, agg.resilience * 100.0);
        }
        let mut s = scenario.clone();
        s.adversary_mode = AdversaryMode::Adaptive;
        let adaptive = runner::run_repeated(&s, scale.reps);
        grid.insert(
            name,
            STATIC_ATTACKS.len() as f64,
            adaptive.resilience * 100.0,
        );
        if adaptive.resilience * 100.0 >= best_static * 100.0 - ADAPTIVE_TOLERANCE_PP {
            adaptive_wins.push(name);
        }
        println!(
            "    {name:9} best static {:5.2}%  adaptive {:5.2}%",
            best_static * 100.0,
            adaptive.resilience * 100.0
        );
    }
    emit(
        "fig_tournament",
        "Converged Byzantine IDs in correct views (%), f=20%",
        &grid,
    );

    // The adaptive adversary's raison d'être: on at least one family it
    // must rediscover (or beat) the best static play on its own.
    assert!(
        !adaptive_wins.is_empty(),
        "adaptive trailed every static attack on every protocol family"
    );
    println!(
        "    adaptive matched or beat the best static attack on: {}",
        adaptive_wins.join(", ")
    );
}
