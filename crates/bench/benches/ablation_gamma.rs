//! Ablation — the Brahms history-sample weight γ (self-healing).
//!
//! DESIGN.md §5: γ·l1 view slots come from the min-wise sample list and
//! are what lets nodes recover from targeted poisoning. Sweeping γ under
//! RAPTEE (t = 10 %, adaptive eviction, f = 20 %) shows the defence's
//! contribution to converged resilience.

use raptee_bench::{emit, header, Scale};
use raptee_sim::runner;
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header(
        "ablation_gamma",
        "History-sample weight sweep (f = 20%, t = 10%)",
        &scale,
    );
    let mut table = SeriesTable::new("gamma(%)");
    for &gamma in &[0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut s = scale.scenario();
        s.byzantine_fraction = 0.20;
        s.trusted_fraction = 0.10;
        s.gamma = gamma;
        let agg = runner::run_repeated(&s, scale.reps);
        table.insert(
            "Byzantine IDs in views (%)",
            gamma * 100.0,
            agg.resilience * 100.0,
        );
        let mut b = s.brahms_baseline();
        b.gamma = gamma;
        let base = runner::run_repeated(&b, scale.reps);
        table.insert(
            "Brahms baseline (%)",
            gamma * 100.0,
            base.resilience * 100.0,
        );
    }
    emit(
        "ablation_gamma",
        "Converged Byzantine share vs gamma",
        &table,
    );
}
