//! Overlay quality of the gossip framework instantiations.
//!
//! Sanity harness for the peer-sampling substrate: Cyclon, Newscast and
//! the RAPTEE trusted-exchange configuration are run on a clean
//! (attack-free) population and compared on the classic overlay metrics
//! — in-degree balance, clustering coefficient and average path length —
//! against the expectations for a random graph of the same out-degree.

use raptee_bench::{emit, header, Scale};
use raptee_gossip::metrics;
use raptee_gossip::protocols::{cyclon, newscast, raptee_trusted, Population};
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header("overlay_quality", "Gossip framework instantiations", &scale);
    let n = scale.n.max(300);
    let c = 16;
    let rounds = 60;
    let mut table = SeriesTable::new("metric#");
    for (name, cfg) in [
        ("cyclon", cyclon(c)),
        ("newscast", newscast(c)),
        ("raptee-trusted", raptee_trusted(c)),
    ] {
        let mut pop = Population::random_bootstrap(n, cfg, 42);
        pop.run_rounds(rounds);
        let deg = metrics::in_degree_stats(pop.views());
        let cc = metrics::clustering_coefficient(pop.views(), 100, 7);
        let apl = metrics::avg_path_length(pop.views(), 30, 7);
        // Metric index: 1 = in-degree sd, 2 = clustering ×1000, 3 = APL.
        table.insert(name, 1.0, deg.std_dev);
        table.insert(name, 2.0, cc * 1000.0);
        table.insert(name, 3.0, apl);
    }
    println!("rows: 1 = in-degree std-dev, 2 = clustering coefficient x1000, 3 = avg path length");
    emit("overlay_quality", "Overlay quality metrics", &table);
    println!(
        "random-graph expectations at n={n}, c={c}: in-degree sd ≈ {:.2}, clustering ≈ {:.1}e-3, APL ≈ {:.2}",
        (c as f64).sqrt(),
        c as f64 / n as f64 * 1000.0,
        (n as f64).ln() / (c as f64).ln()
    );
}
