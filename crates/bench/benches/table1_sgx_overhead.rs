//! Table I — SGX performance overhead of the five peer-sampling
//! functions.
//!
//! Reproduces the paper's micro-benchmark methodology: run each
//! instrumented function in the *standard* profile and in the *emulated
//! SGX* profile (which pays the calibrated Table I cycle overhead), and
//! report the per-function cost plus the overhead statistics. The
//! calibration table itself — the exact numbers the large-scale
//! emulation injects — is printed alongside Criterion's wall-clock
//! measurements of this implementation's real function bodies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raptee::{EvictionPolicy, RapteeConfig, RapteeNode};
use raptee_brahms::BrahmsConfig;
use raptee_crypto::SecretKey;
use raptee_net::NodeId;
use raptee_tee::{ExecutionProfile, PeerSamplingFunction, SgxOverheadModel};
use raptee_util::rng::Xoshiro256StarStar;
use std::hint::black_box;

/// Spins for the sampled SGX overhead of `func`, converting cycles to
/// time at the paper's 3.5 GHz NUC clock — so the emulated-SGX benchmark
/// rows genuinely cost more wall-clock, like the paper's emulated nodes.
fn pay_sgx_overhead(
    model: &SgxOverheadModel,
    func: PeerSamplingFunction,
    rng: &mut Xoshiro256StarStar,
) {
    let cycles = model.sample_overhead(func, rng);
    let nanos = cycles as f64 / 3.5; // 3.5 GHz
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as f64) < nanos {
        std::hint::spin_loop();
    }
}

fn print_calibration_table() {
    let model = SgxOverheadModel::paper_table1();
    println!();
    println!("=== Table I — SGX performance overhead (in CPU cycles) ===");
    println!(
        "{:<24} {:>10} {:>10} {:>14} {:>10}",
        "Peer sampling function", "Standard", "SGX", "Mean overhead", "Std dev"
    );
    for func in PeerSamplingFunction::ALL {
        let row = model.row(func);
        println!(
            "{:<24} {:>10} {:>10} {:>14} {:>9.0}%",
            func.label(),
            row.standard_cycles,
            row.sgx_cycles,
            row.mean_overhead,
            row.rel_std_dev * 100.0
        );
    }
    // Empirical check of the emulation calibration: sampled overhead
    // mean/stddev per function.
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    println!();
    println!("Sampled emulation overhead (100k draws/function):");
    for func in PeerSamplingFunction::ALL {
        let stats: raptee_util::stats::OnlineStats = (0..100_000)
            .map(|_| model.sample_overhead(func, &mut rng) as f64)
            .collect();
        println!(
            "{:<24} mean={:>8.1} sd={:>7.1} cycles",
            func.label(),
            stats.mean(),
            stats.sample_std_dev()
        );
    }
    println!();
}

fn trusted_pair() -> (RapteeNode, RapteeNode) {
    let cfg = RapteeConfig {
        brahms: BrahmsConfig::paper_defaults(200, 200),
        eviction: EvictionPolicy::adaptive(),
    };
    let boot_a: Vec<NodeId> = (10..210).map(NodeId).collect();
    let boot_b: Vec<NodeId> = (300..500).map(NodeId).collect();
    let key = SecretKey::from_seed(7);
    (
        RapteeNode::new_trusted(NodeId(1), cfg.clone(), &boot_a, 1, key.clone()),
        RapteeNode::new_trusted(NodeId(2), cfg, &boot_b, 2, key),
    )
}

fn bench_functions(c: &mut Criterion) {
    let model = SgxOverheadModel::paper_table1();
    let mut group = c.benchmark_group("table1");
    group.sample_size(30);

    for profile in [ExecutionProfile::Standard, ExecutionProfile::EmulatedSgx] {
        let tag = match profile {
            ExecutionProfile::Standard => "standard",
            ExecutionProfile::EmulatedSgx => "sgx",
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);

        // Pull request: answering with the full 200-entry view.
        let (node, _) = trusted_pair();
        group.bench_function(format!("pull_request/{tag}"), |b| {
            let mut rng = rng.split();
            b.iter(|| {
                let ans = node.pull_answer();
                if profile == ExecutionProfile::EmulatedSgx {
                    pay_sgx_overhead(&model, PeerSamplingFunction::PullRequest, &mut rng);
                }
                black_box(ans.len())
            })
        });

        // Push message: recording one incoming push.
        group.bench_function(format!("push_message/{tag}"), |b| {
            let (mut node, _) = trusted_pair();
            let mut rng = rng.split();
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                node.record_push(NodeId(1000 + (k % 500)));
                if profile == ExecutionProfile::EmulatedSgx {
                    pay_sgx_overhead(&model, PeerSamplingFunction::PushMessage, &mut rng);
                }
            })
        });

        // Trusted communications: one half-view swap between two trusted
        // nodes.
        group.bench_function(format!("trusted_comms/{tag}"), |b| {
            let mut rng = rng.split();
            b.iter_batched(
                trusted_pair,
                |(mut a, mut bnode)| {
                    RapteeNode::trusted_swap(&mut a, &mut bnode);
                    if profile == ExecutionProfile::EmulatedSgx {
                        pay_sgx_overhead(
                            &model,
                            PeerSamplingFunction::TrustedCommunications,
                            &mut rng,
                        );
                    }
                    black_box(a.brahms().view().len())
                },
                BatchSize::SmallInput,
            )
        });

        // Sample-list computation: streaming one round's IDs through the
        // l2 = 200 samplers (inside finish_round).
        group.bench_function(format!("sample_list/{tag}"), |b| {
            let mut rng = rng.split();
            b.iter_batched(
                || {
                    let (mut node, _) = trusted_pair();
                    node.plan_round();
                    for s in 0..80u64 {
                        node.record_push(NodeId(2000 + s));
                    }
                    let pulled: Vec<NodeId> = (3000..3200).map(NodeId).collect();
                    node.record_untrusted_pull(&pulled);
                    node
                },
                |mut node| {
                    // finish_round = eviction + view renewal + sampling;
                    // dominated by the sampler stream at this view size.
                    let out = node.finish_round();
                    if profile == ExecutionProfile::EmulatedSgx {
                        pay_sgx_overhead(
                            &model,
                            PeerSamplingFunction::SampleListComputation,
                            &mut rng,
                        );
                    }
                    black_box(out.report.pulled_ids_received)
                },
                BatchSize::SmallInput,
            )
        });

        // Dynamic-view computation: planning the next round's targets
        // from the current view.
        group.bench_function(format!("dynamic_view/{tag}"), |b| {
            let (mut node, _) = trusted_pair();
            let mut rng = rng.split();
            b.iter(|| {
                let plan = node.plan_round();
                if profile == ExecutionProfile::EmulatedSgx {
                    pay_sgx_overhead(
                        &model,
                        PeerSamplingFunction::DynamicViewComputation,
                        &mut rng,
                    );
                }
                black_box(plan.push_targets.len())
            })
        });
    }
    group.finish();
}

fn table1(c: &mut Criterion) {
    print_calibration_table();
    bench_functions(c);
}

criterion_group!(benches, table1);
criterion_main!(benches);
