//! Fig. 7 — RAPTEE resilience improvement and round overheads under a
//! 60 % eviction rate.

fn main() {
    raptee_bench::run_resilience_figure(
        "fig7",
        "RAPTEE vs Brahms under a 60% eviction rate",
        raptee::EvictionPolicy::Fixed(0.6),
    );
}
