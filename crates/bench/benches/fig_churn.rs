//! Churn & recovery figure — dynamic membership under fire.
//!
//! The paper's experiments hold the population fixed for the whole run.
//! This bench sweeps a steady per-round crash rate across three
//! membership regimes on the round engine:
//!
//! * **no rejoin** — crashed nodes never come back (pure attrition);
//! * **cold rejoin** — restarted nodes re-bootstrap with a fresh state;
//! * **warm rejoin** — restarted nodes keep their last view and sampler
//!   state and re-validate it against the live population.
//!
//! Panel (a): converged Byzantine in-view share (%) per regime — the
//! acceptance property of `tests/failure_injection.rs` (rejoin strictly
//! beats permanent departure) shown across the whole churn axis.
//! Panel (b): availability (live-node fraction integrated over the run,
//! %) and mean time-to-recover (rounds from restart to a re-stabilised
//! view) per rejoin policy.
//!
//! Two free-form runs ride along: a catastrophe burst (a crash spike
//! over a twentieth of the run) and a trusted-tier degradation run
//! (attestation certificates expiring with TTL = rounds/16 and
//! renewing), each printing its recovery counters.

use raptee_bench::{emit, header, Scale};
use raptee_sim::{runner, ChurnBurst, ChurnSchedule, RejoinPolicy, Scenario};
use raptee_util::series::SeriesTable;

/// Trusted tier of every run (the paper's t = 10 %).
const TRUSTED: f64 = 0.10;

/// Restart rate of the rejoin regimes: a crashed node returns with
/// probability 0.4 per round (mean outage of 2.5 rounds).
const RESTART: f64 = 0.4;

/// The per-round crash rates of the x axis (fraction of live nodes).
const CRASH_RATES: [f64; 4] = [0.005, 0.01, 0.02, 0.04];

fn churn_template(scale: &Scale) -> Scenario {
    let mut template = scale.scenario();
    template.byzantine_fraction = 0.10;
    template.trusted_fraction = TRUSTED;
    template
}

fn main() {
    let scale = Scale::from_env();
    header(
        "fig_churn",
        "RAPTEE under continuous churn: attrition vs cold vs warm rejoin",
        &scale,
    );

    let template = churn_template(&scale);
    let mut pollution = SeriesTable::new("crash(%/round)");
    let mut recovery = SeriesTable::new("crash(%/round)");
    for &crash in &CRASH_RATES {
        let x = crash * 100.0;
        let mut attrition = template.clone();
        attrition.churn = ChurnSchedule::steady(crash, 0.0);
        let dead_end = runner::run_repeated(&attrition, scale.reps);
        pollution.insert("no rejoin", x, dead_end.resilience * 100.0);

        for (label, policy) in [
            ("cold rejoin", RejoinPolicy::Cold),
            ("warm rejoin", RejoinPolicy::Warm),
        ] {
            let mut s = template.clone();
            s.churn = ChurnSchedule::steady(crash, RESTART);
            s.churn.rejoin = policy;
            let agg = runner::run_repeated(&s, scale.reps);
            pollution.insert(label, x, agg.resilience * 100.0);
            if let Some(avail) = agg.availability {
                recovery.insert(format!("availability {label} (%)"), x, avail * 100.0);
            }
            if let Some(ttr) = agg.time_to_recover {
                recovery.insert(format!("TTR {label} (rounds)"), x, ttr);
            }
        }
    }
    emit(
        "fig_churna",
        "(a) Converged Byzantine IDs in correct views (%) per rejoin regime",
        &pollution,
    );
    emit(
        "fig_churnb",
        "(b) Availability (%) and mean time-to-recover (rounds) per rejoin policy",
        &recovery,
    );

    // A catastrophe burst on top of gentle steady churn: a twentieth of
    // the run at a 25 %/round crash rate, warm rejoin.
    let mut burst = template.clone();
    let start = burst.rounds / 4;
    burst.churn = ChurnSchedule::steady(0.005, RESTART);
    burst.churn.rejoin = RejoinPolicy::Warm;
    burst.churn.bursts = vec![ChurnBurst {
        start,
        end: start + (burst.rounds / 20).max(2),
        crash_rate: 0.25,
    }];
    let burst_run = runner::run_scenario(burst.clone());
    if let Some(rec) = &burst_run.recovery {
        println!(
            "    catastrophe run (burst rounds {}..{} @ 25%/round): {} crashes, {} restarts, {} recovered, availability {:.1}%, TTR {}",
            burst.churn.bursts[0].start,
            burst.churn.bursts[0].end,
            rec.crashes,
            rec.restarts,
            rec.recovered,
            rec.availability * 100.0,
            rec.mean_time_to_recover
                .map_or_else(|| "-".to_string(), |t| format!("{t:.1} rounds")),
        );
    }

    // Trusted-tier degradation: attestation certificates expire with a
    // staggered TTL and renew a few rounds later; the trusted tier dips
    // and heals while the node population itself never crashes.
    let mut expiry = template;
    expiry.attest_ttl = (expiry.rounds / 16).max(4);
    let expiry_run = runner::run_scenario(expiry.clone());
    if let Some(rec) = &expiry_run.recovery {
        let min_live = rec
            .trusted_live_fraction
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let final_live = rec.trusted_live_fraction.last().copied().unwrap_or(1.0);
        println!(
            "    attestation-expiry run (TTL {} rounds): trusted tier dipped to {:.1}% attested, finished at {:.1}%, node availability {:.1}%",
            expiry.attest_ttl,
            min_live * 100.0,
            final_live * 100.0,
            rec.availability * 100.0,
        );
    }
}
