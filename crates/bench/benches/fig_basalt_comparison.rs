//! BASALT comparison — the head-to-head the RAPTEE paper only discusses
//! qualitatively.
//!
//! Three protocols at the same workload and per-identity message budget,
//! sweeping the Byzantine proportion under the balanced attack:
//!
//! * **Brahms** — the unhardened baseline (Fig. 3);
//! * **RAPTEE** — Brahms + trusted tier (t = 10 %, adaptive eviction);
//! * **BASALT** — ranked hit-counter views with seed rotation, no
//!   trusted hardware at all.
//!
//! Panel (a): converged Byzantine in-view share (%). Panel (b): rounds to
//! 75 % system discovery — note the discovery *criterion* differs by
//! protocol (see `raptee_sim::engine`): Brahms/RAPTEE count an ID once it
//! enters the dynamic view, BASALT counts every ranked candidate, because
//! its view is deliberately stable. Panel (b) therefore compares each
//! protocol against its own notion of "known", not a shared event.
//! BASALT bounds pollution near the adversary's population share without
//! enclaves; RAPTEE buys resilience *and* fast view-level mixing with its
//! trusted tier.

use raptee_bench::{byzantine_fractions, emit, header, Scale};
use raptee_sim::runner;
use raptee_util::series::SeriesTable;

/// Seed-rotation interval for the BASALT runs (rounds).
const ROTATION_INTERVAL: usize = 30;

fn main() {
    let scale = Scale::from_env();
    header(
        "fig_basalt_comparison",
        "Brahms vs RAPTEE vs BASALT under the balanced attack",
        &scale,
    );
    let mut resilience = SeriesTable::new("f(%)");
    let mut discovery = SeriesTable::new("f(%)");
    for &f in &byzantine_fractions(&scale) {
        let mut template = scale.scenario();
        template.byzantine_fraction = f;

        let brahms = runner::run_repeated(&template.brahms_baseline(), scale.reps);
        let mut raptee_scenario = template.clone();
        raptee_scenario.trusted_fraction = 0.10;
        let raptee = runner::run_repeated(&raptee_scenario, scale.reps);
        let basalt = runner::run_repeated(&template.basalt_variant(ROTATION_INTERVAL), scale.reps);

        let x = f * 100.0;
        resilience.insert("Brahms", x, brahms.resilience * 100.0);
        resilience.insert("RAPTEE t=10%", x, raptee.resilience * 100.0);
        resilience.insert("BASALT", x, basalt.resilience * 100.0);
        for (name, agg) in [
            ("Brahms", &brahms),
            ("RAPTEE t=10%", &raptee),
            ("BASALT", &basalt),
        ] {
            if let Some(d) = agg.discovery_round {
                discovery.insert(name, x, d);
            }
        }
    }
    emit(
        "fig_basalt_comparisona",
        "(a) Converged Byzantine IDs in correct views (%)",
        &resilience,
    );
    emit(
        "fig_basalt_comparisonb",
        "(b) Rounds to 75% system discovery (criterion differs: view-entry for Brahms/RAPTEE, ranked candidates for BASALT)",
        &discovery,
    );
}
