//! Fig. 6 — RAPTEE resilience improvement and round overheads under a
//! 40 % eviction rate.

fn main() {
    raptee_bench::run_resilience_figure(
        "fig6",
        "RAPTEE vs Brahms under a 40% eviction rate",
        raptee::EvictionPolicy::Fixed(0.4),
    );
}
