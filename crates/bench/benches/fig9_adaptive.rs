//! Fig. 9 — RAPTEE resilience improvement and round overheads under the
//! adaptive eviction-rate policy (20–80 %, linear in the trusted-contact
//! share).

fn main() {
    raptee_bench::run_resilience_figure(
        "fig9",
        "RAPTEE vs Brahms under the adaptive eviction rate policy",
        raptee::EvictionPolicy::adaptive(),
    );
}
