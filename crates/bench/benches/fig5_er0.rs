//! Fig. 5 — RAPTEE resilience improvement and round overheads under a
//! 0 % eviction rate, versus the Brahms baseline, for t ∈ {1..50} %.

fn main() {
    raptee_bench::run_resilience_figure(
        "fig5",
        "RAPTEE vs Brahms under a 0% eviction rate",
        raptee::EvictionPolicy::Fixed(0.0),
    );
}
