//! Baseline comparison — Secure Peer Sampling vs Brahms under flooding.
//!
//! Related work (Section VIII): SPS secures peer sampling with detection
//! and blacklisting but "remains vulnerable to rapid flooding attack as
//! correct nodes cannot identify and blacklist attackers before being
//! overwhelmed". This bench reproduces the comparison: the malicious
//! view share under slow vs rapid flooding for SPS, against Brahms under
//! its (rate-limited) balanced attack at the same adversary share.

use raptee_bench::{emit, header, Scale};
use raptee_sim::{runner, Scenario};
use raptee_sps::{Flooding, SpsConfig, SpsPopulation};
use raptee_util::series::SeriesTable;

fn main() {
    let scale = Scale::from_env();
    header(
        "baseline_sps",
        "SPS (detection/blacklisting) vs Brahms under flooding",
        &scale,
    );
    let n = scale.n.min(600);
    let rounds = 80;
    let mut table = SeriesTable::new("f(%)");
    for &f in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30] {
        let malicious = (n as f64 * f).round() as usize;
        let cfg = SpsConfig::with_view_size(scale.view);
        let mut slow = SpsPopulation::new(n, malicious, cfg, Flooding::Slow { core: 2 }, 42);
        slow.run_rounds(rounds);
        table.insert(
            "SPS slow-flood",
            f * 100.0,
            slow.malicious_view_share() * 100.0,
        );
        let mut rapid = SpsPopulation::new(n, malicious, cfg, Flooding::Rapid, 42);
        rapid.run_rounds(rounds);
        table.insert(
            "SPS rapid-flood",
            f * 100.0,
            rapid.malicious_view_share() * 100.0,
        );

        let s = Scenario {
            n,
            byzantine_fraction: f,
            view_size: scale.view,
            sample_size: scale.view,
            rounds,
            tail_window: 10,
            seed: 42,
            ..Scenario::default()
        }
        .brahms_baseline();
        s.validate();
        let brahms = runner::run_repeated(&s, scale.reps);
        table.insert("Brahms", f * 100.0, brahms.resilience * 100.0);
    }
    emit(
        "baseline_sps",
        "Malicious IDs in correct views (%) — lower is better",
        &table,
    );
    println!(
        "SPS contains the slow flood via blacklisting, but the rapid flood\n\
         overwhelms it; Brahms bounds both through rate-limited pushes and\n\
         min-wise sampling (RAPTEE then improves on Brahms; Figs. 5-9)."
    );
}
