//! Fig. 11 — Precision, recall and F1-score of trusted-node
//! identification under 30 % of Byzantine nodes, per eviction rate.

fn main() {
    raptee_bench::run_identification_figure(
        "fig11",
        "Trusted-node identification under 30% Byzantine nodes",
        0.30,
    );
}
