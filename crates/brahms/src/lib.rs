//! Brahms — Byzantine-resilient random membership sampling.
//!
//! Implementation of Bortnikov, Gurevich, Keidar, Kliot & Shraer's
//! protocol (Computer Networks 2009), the baseline RAPTEE builds on and
//! the most Byzantine-resilient peer-sampling protocol to date. Each node
//! runs two components:
//!
//! * a **gossip component** maintaining a dynamic view `V` of `l1`
//!   entries, refreshed every round from pushes, pull answers and the
//!   history sample;
//! * a **sampling component** (`raptee-sampler`) maintaining a sample
//!   list `S` of `l2` min-wise samplers that converges to a uniform
//!   sample of all streamed IDs.
//!
//! The four defence mechanisms of the paper are all present:
//!
//! 1. **Limited pushes** — enforced by `raptee-net`'s
//!    [`raptee_net::PushRateLimiter`]; the protocol side simply counts
//!    what arrives.
//! 2. **Attack detection and blocking** — [`BrahmsNode::finish_round`]
//!    refuses to renew the view in any round where more pushes arrive
//!    than the expected `α·l1` (a targeted flood), or where pushes or
//!    pulls are missing entirely.
//! 3. **Balanced contribution** — the renewed view mixes exactly
//!    `α·l1` pushed IDs, `β·l1` pulled IDs and `γ·l1` history samples
//!    (paper defaults α = β = 0.4, γ = 0.2).
//! 4. **History sampling** — the `γ·l1` slice drawn from `S` lets a
//!    node under targeted attack self-heal.
//!
//! The node is transport-agnostic: the caller (the `raptee-sim` engine, a
//! test, or an example) moves [`RoundPlan`] targets and delivers events
//! via [`BrahmsNode::record_push`] / [`BrahmsNode::record_pulled`], then
//! calls [`BrahmsNode::finish_round`]. `raptee` (the core crate) wraps
//! this node to add mutual authentication, trusted communications and
//! Byzantine eviction.

pub mod config;
pub mod node;

pub use config::BrahmsConfig;
pub use node::{BrahmsNode, FinishScratch, RoundPlan, RoundReport};
