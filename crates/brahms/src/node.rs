//! The Brahms node state machine.
//!
//! One protocol round, as driven by the caller:
//!
//! ```text
//! plan = node.plan_round()          // α·l1 push targets, β·l1 pull targets
//! ... deliver pushes (rate-limited) → receiver.record_push(sender)
//! ... answer pulls: responder.pull_answer() → requester.record_pulled(ids)
//! report = node.finish_round()      // defences + view renewal + sampling
//! ```
//!
//! The node never touches a socket: the simulation engine (or RAPTEE's
//! wrapper) owns delivery, which is what lets RAPTEE interpose mutual
//! authentication, the trusted swap and Byzantine eviction without
//! modifying this crate.

use crate::config::BrahmsConfig;
use raptee_gossip::view::{View, ViewEntry};
use raptee_net::NodeId;
use raptee_sampler::SamplerArray;
use raptee_util::rng::Xoshiro256StarStar;

/// The send targets a node chose for the current round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundPlan {
    /// Destinations of push messages (the node's own ID is the payload).
    pub push_targets: Vec<NodeId>,
    /// Destinations of pull requests.
    pub pull_targets: Vec<NodeId>,
}

/// What happened when a round was finalised — exposed for metrics and for
/// the attack-detection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// Whether the dynamic view was renewed this round.
    pub view_renewed: bool,
    /// Number of push messages received.
    pub pushes_received: usize,
    /// Number of pulled IDs received (after any caller-side filtering).
    pub pulled_ids_received: usize,
    /// `true` when renewal was blocked by the push-flood detector.
    pub push_flood_detected: bool,
}

/// Reusable buffers for the round-finalisation pipeline (index scratch
/// for `sample_into`, drawn picks, the current sample list and the next
/// view). Every [`BrahmsNode`] owns one for the standalone
/// [`BrahmsNode::finish_round`] API; the simulation engine instead keeps
/// **one per worker thread** and finalises thousands of nodes through it
/// via [`BrahmsNode::finish_round_with`], so per-node state stays small
/// (struct-of-arrays engine layout) and the parallel round loop still
/// allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct FinishScratch {
    idx: Vec<u32>,
    pick: Vec<NodeId>,
    samples: Vec<NodeId>,
    next: Vec<ViewEntry>,
}

/// A Brahms node: dynamic view + sampling component + per-round buffers.
///
/// # Examples
///
/// ```
/// use raptee_brahms::{BrahmsConfig, BrahmsNode};
/// use raptee_net::NodeId;
///
/// let cfg = BrahmsConfig::paper_defaults(10, 10);
/// let bootstrap: Vec<NodeId> = (1..=10).map(NodeId).collect();
/// let mut node = BrahmsNode::new(NodeId(0), cfg, &bootstrap, 42);
/// let plan = node.plan_round();
/// assert_eq!(plan.push_targets.len(), cfg.alpha_count());
/// assert_eq!(plan.pull_targets.len(), cfg.beta_count());
/// ```
#[derive(Debug, Clone)]
pub struct BrahmsNode {
    id: NodeId,
    config: BrahmsConfig,
    view: View,
    sampler: SamplerArray,
    rng: Xoshiro256StarStar,
    pushed: Vec<NodeId>,
    pulled: Vec<NodeId>,
    rounds: u64,
    renewals: u64,
    floods_detected: u64,
    /// Scratch for the standalone [`BrahmsNode::finish_round`] path (the
    /// engine passes per-worker scratch instead — see [`FinishScratch`]).
    scratch: FinishScratch,
}

impl BrahmsNode {
    /// Creates a node whose initial view is filled from `bootstrap`
    /// (paper: "a list containing node IDs and addresses obtained from a
    /// bootstrap node").
    pub fn new(id: NodeId, config: BrahmsConfig, bootstrap: &[NodeId], seed: u64) -> Self {
        config.validate();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut view = View::new(id, config.view_size);
        for &b in bootstrap {
            if view.len() == config.view_size {
                break;
            }
            view.insert_fresh(b);
        }
        let mut sampler = SamplerArray::new(config.sample_size, &mut rng);
        // The bootstrap list is the first observed stream.
        sampler.observe_all(view.ids());
        Self {
            id,
            config,
            view,
            sampler,
            rng,
            pushed: Vec::new(),
            pulled: Vec::new(),
            rounds: 0,
            renewals: 0,
            floods_detected: 0,
            scratch: FinishScratch::default(),
        }
    }

    /// Cold rejoin after a crash–restart: the node comes back with a
    /// fresh bootstrap view and fully reinitialised samplers, as if
    /// provisioned from scratch — the pre-crash view, sample list and
    /// RNG stream are all discarded (only identity and the cumulative
    /// lifetime counters survive).
    pub fn rejoin_cold(&mut self, bootstrap: &[NodeId], seed: u64) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut view = View::new(self.id, self.config.view_size);
        for &b in bootstrap {
            if view.len() == self.config.view_size {
                break;
            }
            view.insert_fresh(b);
        }
        let mut sampler = SamplerArray::new(self.config.sample_size, &mut rng);
        sampler.observe_all(view.ids());
        self.view = view;
        self.sampler = sampler;
        self.rng = rng;
        self.pushed.clear();
        self.pulled.clear();
    }

    /// Warm rejoin after a crash–restart: the node resumes from its
    /// persisted view and sample list, but every entry is probed
    /// against `is_alive` first — the Brahms probe revalidation a
    /// returning node runs before trusting state that aged while it was
    /// down. Dead view entries are dropped and samplers holding dead
    /// IDs are re-initialised. Returns `(view entries purged, samplers
    /// reset)`.
    pub fn rejoin_warm<F: FnMut(NodeId) -> bool>(&mut self, mut is_alive: F) -> (usize, usize) {
        let purged = self.view.retain(|e| is_alive(e.id));
        let reset = self.sampler.validate(&mut is_alive, &mut self.rng);
        self.pushed.clear();
        self.pulled.clear();
        (purged, reset)
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol parameters.
    pub fn config(&self) -> &BrahmsConfig {
        &self.config
    }

    /// Read access to the dynamic view `V`.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Mutable access to the dynamic view — needed by RAPTEE's trusted
    /// view-swap, which exchanges view halves outside the plain protocol.
    pub fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    /// Read access to the sampling component.
    pub fn sampler(&self) -> &SamplerArray {
        &self.sampler
    }

    /// Mutable access to the sampling component (probe validation).
    pub fn sampler_mut(&mut self) -> &mut SamplerArray {
        &mut self.sampler
    }

    /// The node's RNG (shared with wrappers so the whole node stays on
    /// one deterministic stream).
    pub fn rng_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    /// Split-borrows the view and the RNG simultaneously — needed by
    /// RAPTEE's trusted swap, which mutates the view using the node's own
    /// random stream.
    pub fn view_and_rng_mut(&mut self) -> (&mut View, &mut Xoshiro256StarStar) {
        (&mut self.view, &mut self.rng)
    }

    /// Split-borrows the sampler and the RNG simultaneously — needed by
    /// the probe-based sampler validation, which re-draws hash functions
    /// from the node's own random stream.
    pub fn sampler_and_rng_mut(&mut self) -> (&mut SamplerArray, &mut Xoshiro256StarStar) {
        (&mut self.sampler, &mut self.rng)
    }

    /// Rounds finalised so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds in which the view was actually renewed.
    pub fn renewals(&self) -> u64 {
        self.renewals
    }

    /// Rounds in which the push-flood detector fired.
    pub fn floods_detected(&self) -> u64 {
        self.floods_detected
    }

    /// Chooses this round's push and pull targets: `α·l1` and `β·l1`
    /// uniformly random draws from the view (with replacement, as in the
    /// original protocol's `rand(V)`).
    pub fn plan_round(&mut self) -> RoundPlan {
        let mut plan = RoundPlan::default();
        self.plan_round_into(&mut plan);
        plan
    }

    /// [`BrahmsNode::plan_round`] into a caller-owned plan whose target
    /// vectors are cleared and refilled — the engine keeps one plan per
    /// actor alive across rounds, so planning allocates nothing. The RNG
    /// draw sequence is identical to `plan_round`.
    pub fn plan_round_into(&mut self, plan: &mut RoundPlan) {
        plan.push_targets.clear();
        plan.pull_targets.clear();
        if self.view.is_empty() {
            return;
        }
        for _ in 0..self.config.alpha_count() {
            if let Some(e) = self.view.random(&mut self.rng) {
                plan.push_targets.push(e.id);
            }
        }
        for _ in 0..self.config.beta_count() {
            if let Some(e) = self.view.random(&mut self.rng) {
                plan.pull_targets.push(e.id);
            }
        }
    }

    /// Records an incoming push (the sender's ID).
    pub fn record_push(&mut self, sender: NodeId) {
        if sender != self.id {
            self.pushed.push(sender);
        }
    }

    /// Records the IDs from one pull answer (or, under RAPTEE, the IDs
    /// surviving eviction, plus the trusted-swap IDs).
    pub fn record_pulled(&mut self, ids: &[NodeId]) {
        self.pulled
            .extend(ids.iter().copied().filter(|&i| i != self.id));
    }

    /// Answers a pull request: the full current view (paper Section III-A).
    pub fn pull_answer(&self) -> Vec<NodeId> {
        self.view.id_vec()
    }

    /// Number of pushes buffered so far this round (used by wrappers).
    pub fn pushes_buffered(&self) -> usize {
        self.pushed.len()
    }

    /// Finalises the round: runs the attack-blocking rule, renews the
    /// view from `α·l1` pushed ∪ `β·l1` pulled ∪ `γ·l1` history-sampled
    /// IDs, and feeds the full (pushed ∪ pulled) stream to the samplers.
    pub fn finish_round(&mut self) -> RoundReport {
        let pushed = std::mem::take(&mut self.pushed);
        let pulled = std::mem::take(&mut self.pulled);
        let mut scratch = std::mem::take(&mut self.scratch);
        let report = self.finish_round_with(&pushed, &pulled, &mut scratch);
        self.scratch = scratch;
        // Hand the buffers back for next-round reuse, emptied (the
        // historical drain semantics).
        self.pushed = pushed;
        self.pushed.clear();
        self.pulled = pulled;
        self.pulled.clear();
        report
    }

    /// [`BrahmsNode::finish_round`] over caller-owned event streams and
    /// scratch, bypassing the internal `record_push`/`record_pulled`
    /// buffers entirely. The simulation engine reconstructs each node's
    /// `pushed`/`pulled` streams from its shared per-round arenas (push
    /// runs, pull-answer snapshots) and finalises many nodes in parallel
    /// through per-worker [`FinishScratch`] arenas. The RNG draw
    /// sequence is identical to `finish_round` on identically recorded
    /// streams — callers must pre-apply the `record_*` self-ID filters.
    pub fn finish_round_with(
        &mut self,
        pushed: &[NodeId],
        pulled: &[NodeId],
        scratch: &mut FinishScratch,
    ) -> RoundReport {
        let pushes_received = pushed.len();
        let pulled_ids_received = pulled.len();

        // Defence (ii): a node receiving more pushes than it expects to
        // admit is under a targeted flood; block the view update so the
        // attacker cannot monopolise it. Updates also require both
        // channels to have produced something, otherwise a starved round
        // would wipe the view.
        let push_flood_detected = pushes_received > self.config.effective_flood_threshold();
        let view_renewed = !push_flood_detected && pushes_received > 0 && pulled_ids_received > 0;

        if view_renewed {
            // Defence (iii): balanced α/β contribution — `rand(α·l1,
            // pushed) ∪ rand(β·l1, pulled)` exactly as in the original
            // protocol. The draws are over the raw multisets: an ID that
            // is over-represented in the stream is proportionally likely
            // to be drawn (the view itself still stores it only once).
            // Brahms counters that bias with the sampler, not here.
            scratch.next.clear();
            self.rng.sample_into(
                pushed,
                self.config.alpha_count(),
                &mut scratch.idx,
                &mut scratch.pick,
            );
            scratch
                .next
                .extend(scratch.pick.iter().copied().map(ViewEntry::fresh));
            self.rng.sample_into(
                pulled,
                self.config.beta_count(),
                &mut scratch.idx,
                &mut scratch.pick,
            );
            scratch
                .next
                .extend(scratch.pick.iter().copied().map(ViewEntry::fresh));
            // Defence (iv): history sample for self-healing — `γ·l1`
            // draws with replacement from the current sample list (the
            // same draws `SamplerArray::history_sample` would make).
            self.sampler.samples_into(&mut scratch.samples);
            if !scratch.samples.is_empty() {
                for _ in 0..self.config.gamma_count() {
                    let i = self.rng.index(scratch.samples.len());
                    scratch.next.push(ViewEntry::fresh(scratch.samples[i]));
                }
            }
            self.view.replace_with(scratch.next.drain(..));
            self.renewals += 1;
        }
        if push_flood_detected {
            self.floods_detected += 1;
        }

        // The sampling component consumes the *unfiltered* stream in
        // Brahms; RAPTEE's eviction happens before record_pulled, so from
        // this node's perspective the stream is whatever was recorded.
        // Min-wise sampling is invariant under repetition — the sampler's
        // seen-cache makes repeats O(1), so the stream is fed raw (no
        // sort/dedup pass, no intermediate allocation).
        self.sampler.observe_all(pushed.iter().copied());
        self.sampler.observe_all(pulled.iter().copied());

        self.rounds += 1;
        RoundReport {
            view_renewed,
            pushes_received,
            pulled_ids_received,
            push_flood_detected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(l1: usize) -> BrahmsConfig {
        BrahmsConfig::paper_defaults(l1, l1)
    }

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn node(l1: usize) -> BrahmsNode {
        BrahmsNode::new(NodeId(0), cfg(l1), &ids(1..(l1 as u64 + 1)), 7)
    }

    #[test]
    fn bootstrap_fills_view_and_sampler() {
        let n = node(10);
        assert_eq!(n.view().len(), 10);
        assert_eq!(n.sampler().samples().len(), 10);
    }

    #[test]
    fn cold_rejoin_matches_a_freshly_bootstrapped_node() {
        let mut n = node(10);
        // Age the node: pushes, pulls, finished rounds.
        n.record_push(NodeId(55));
        n.record_pulled(&ids(60..70));
        n.finish_round();
        let boot = ids(100..110);
        n.rejoin_cold(&boot, 99);
        let fresh = BrahmsNode::new(NodeId(0), cfg(10), &boot, 99);
        assert_eq!(n.view().ids().collect::<Vec<_>>(), boot);
        assert_eq!(n.sampler().samples(), fresh.sampler().samples());
    }

    #[test]
    fn warm_rejoin_purges_dead_view_entries_and_samples() {
        let mut n = node(10);
        // Everything below NodeId(6) "died" while the node was down.
        let (purged, reset) = n.rejoin_warm(|id| id.0 >= 6);
        assert_eq!(purged, 5, "bootstrap IDs 1..6 purged from the view");
        assert!(reset >= 1, "samplers holding dead IDs re-initialised");
        assert!(n.view().ids().all(|id| id.0 >= 6));
        assert!(n.sampler().samples().iter().all(|id| id.0 >= 6));
    }

    #[test]
    fn plan_counts_match_config() {
        let mut n = node(10);
        let plan = n.plan_round();
        assert_eq!(plan.push_targets.len(), 4); // α=0.4 × 10
        assert_eq!(plan.pull_targets.len(), 4); // β=0.4 × 10
        for t in plan.push_targets.iter().chain(&plan.pull_targets) {
            assert!(n.view().contains(*t));
        }
    }

    #[test]
    fn empty_view_plans_nothing() {
        let mut n = BrahmsNode::new(NodeId(0), cfg(10), &[], 7);
        let plan = n.plan_round();
        assert!(plan.push_targets.is_empty());
        assert!(plan.pull_targets.is_empty());
    }

    #[test]
    fn own_id_filtered_from_events() {
        let mut n = node(10);
        n.record_push(NodeId(0));
        n.record_pulled(&[NodeId(0), NodeId(3)]);
        assert_eq!(n.pushes_buffered(), 0);
        let report = n.finish_round();
        assert_eq!(report.pulled_ids_received, 1);
    }

    #[test]
    fn normal_round_renews_view() {
        let mut n = node(10);
        for s in 20..24 {
            n.record_push(NodeId(s));
        }
        n.record_pulled(&ids(30..40));
        let report = n.finish_round();
        assert!(report.view_renewed);
        assert!(!report.push_flood_detected);
        assert_eq!(n.view().len(), 4 + 4 + 2); // α + β + γ counts
        assert!(n.view().invariants_hold());
        // The renewed view holds pushed and pulled IDs.
        assert!(n.view().ids().any(|i| (20..24).contains(&i.0)));
        assert!(n.view().ids().any(|i| (30..40).contains(&i.0)));
    }

    #[test]
    fn push_flood_blocks_renewal() {
        let mut n = node(10);
        // α·l1 = 4; deliver 5 pushes → flood.
        for s in 20..25 {
            n.record_push(NodeId(s));
        }
        n.record_pulled(&ids(30..40));
        let before = n.view().id_vec();
        let report = n.finish_round();
        assert!(report.push_flood_detected);
        assert!(!report.view_renewed);
        assert_eq!(n.view().id_vec(), before, "view untouched under flood");
        assert_eq!(n.floods_detected(), 1);
    }

    #[test]
    fn starved_round_keeps_view() {
        let mut n = node(10);
        // Pushes but no pulls.
        n.record_push(NodeId(20));
        let before = n.view().id_vec();
        assert!(!n.finish_round().view_renewed);
        assert_eq!(n.view().id_vec(), before);
        // Pulls but no pushes.
        n.record_pulled(&ids(30..35));
        assert!(!n.finish_round().view_renewed);
        assert_eq!(n.view().id_vec(), before);
    }

    #[test]
    fn sampler_sees_stream_even_when_blocked() {
        let mut n = node(4);
        // α·l1 = 2 for l1=4; flood with 3 pushes from new IDs.
        for s in 100..103 {
            n.record_push(NodeId(s));
        }
        n.finish_round();
        // Streamed IDs may appear in the samples despite the block.
        let seen: Vec<u64> = n.sampler().samples().iter().map(|i| i.0).collect();
        // At minimum, the samplers observed them: feeding again changes nothing.
        let before = n.sampler().samples();
        let mut n2 = n.clone();
        for s in 100..103 {
            n2.record_push(NodeId(s));
        }
        n2.record_pulled(&[NodeId(1)]);
        n2.finish_round();
        assert_eq!(
            n2.sampler().samples(),
            before,
            "min-wise samples are stable, {seen:?}"
        );
    }

    #[test]
    fn repeated_pushes_do_not_dominate_view() {
        // One Byzantine ID repeated many times in the push buffer gets at
        // most one slot in the renewed view.
        let mut n = node(10);
        for _ in 0..4 {
            n.record_push(NodeId(666));
        }
        n.record_pulled(&ids(30..40));
        let report = n.finish_round();
        assert!(report.view_renewed);
        let occurrences = n.view().ids().filter(|i| i.0 == 666).count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn buffers_clear_between_rounds() {
        let mut n = node(10);
        for s in 20..24 {
            n.record_push(NodeId(s));
        }
        n.record_pulled(&ids(30..40));
        n.finish_round();
        // Next round with no traffic: starved, no renewal, counters zero.
        let report = n.finish_round();
        assert_eq!(report.pushes_received, 0);
        assert_eq!(report.pulled_ids_received, 0);
        assert!(!report.view_renewed);
        assert_eq!(n.rounds(), 2);
        assert_eq!(n.renewals(), 1);
    }

    #[test]
    fn pull_answer_is_full_view() {
        let n = node(10);
        let mut answer = n.pull_answer();
        let mut view_ids = n.view().id_vec();
        answer.sort_unstable();
        view_ids.sort_unstable();
        assert_eq!(answer, view_ids);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut n = BrahmsNode::new(NodeId(0), cfg(10), &ids(1..11), 99);
            for s in 20..24 {
                n.record_push(NodeId(s));
            }
            n.record_pulled(&ids(30..40));
            n.finish_round();
            n.view().id_vec()
        };
        assert_eq!(mk(), mk());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any round, the view respects its invariants and capacity,
        /// and renewal only happens under the documented conditions.
        #[test]
        fn round_preserves_invariants(
            pushes in proptest::collection::vec(1u64..500, 0..12),
            pulls in proptest::collection::vec(1u64..500, 0..40),
            seed in 0u64..1000,
        ) {
            let cfg = BrahmsConfig::paper_defaults(10, 10);
            let bootstrap: Vec<NodeId> = (1..11).map(NodeId).collect();
            let mut n = BrahmsNode::new(NodeId(0), cfg, &bootstrap, seed);
            for &p in &pushes {
                n.record_push(NodeId(p));
            }
            n.record_pulled(&pulls.iter().map(|&p| NodeId(p)).collect::<Vec<_>>());
            let report = n.finish_round();
            prop_assert!(n.view().invariants_hold());
            prop_assert!(n.view().len() <= 10);
            let pushes_kept = pushes.len();
            let expected_renewal = pushes_kept > 0
                && pushes_kept <= cfg.alpha_count()
                && !pulls.is_empty();
            prop_assert_eq!(report.view_renewed, expected_renewal);
        }
    }
}
