//! Brahms protocol parameters.

/// Parameters of a Brahms node.
///
/// The paper's experiments use `α = β = 0.4`, `γ = 0.2` (the values
/// recommended by the original Brahms paper) and a view size `l1 = 200`
/// at `N = 10,000`; `l2` is set equal to `l1` unless stated otherwise.
///
/// # Examples
///
/// ```
/// use raptee_brahms::BrahmsConfig;
/// let cfg = BrahmsConfig::paper_defaults(200, 200);
/// assert_eq!(cfg.alpha_count(), 80);
/// assert_eq!(cfg.beta_count(), 80);
/// assert_eq!(cfg.gamma_count(), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrahmsConfig {
    /// Dynamic view size `l1`.
    pub view_size: usize,
    /// Sample list size `l2`.
    pub sample_size: usize,
    /// Fraction of the view renewed from pushed IDs.
    pub alpha: f64,
    /// Fraction of the view renewed from pulled IDs.
    pub beta: f64,
    /// Fraction of the view renewed from the history sample.
    pub gamma: f64,
    /// Push-flood detection threshold. `None` uses the paper-literal
    /// `α·l1`. At the paper's scale that threshold sits ≈ 4σ above the
    /// mean per-round push arrival, so honest traffic almost never trips
    /// it; at reduced view sizes the same formula sits ≈ 1σ above the
    /// mean and falsely blocks 20–30 % of calm rounds. Reduced-scale
    /// scenarios therefore set an explicit threshold preserving the
    /// paper-scale *relative* margin (see `raptee-sim`'s scenario
    /// builder).
    pub flood_threshold: Option<usize>,
}

impl BrahmsConfig {
    /// The configuration used throughout the paper's evaluation:
    /// `α = β = 0.4`, `γ = 0.2`.
    pub fn paper_defaults(view_size: usize, sample_size: usize) -> Self {
        let cfg = Self {
            view_size,
            sample_size,
            alpha: 0.4,
            beta: 0.4,
            gamma: 0.2,
            flood_threshold: None,
        };
        cfg.validate();
        cfg
    }

    /// Checks parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics when sizes are zero, any fraction is negative, or
    /// `α + β + γ` differs from 1 by more than 1e-9.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "view size l1 must be positive");
        assert!(self.sample_size > 0, "sample size l2 must be positive");
        assert!(
            self.alpha >= 0.0 && self.beta >= 0.0 && self.gamma >= 0.0,
            "alpha/beta/gamma must be non-negative"
        );
        let sum = self.alpha + self.beta + self.gamma;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "alpha + beta + gamma must equal 1 (got {sum})"
        );
    }

    /// `⌈α·l1⌉` — pushes sent per round and pushed IDs admitted to the
    /// renewed view.
    pub fn alpha_count(&self) -> usize {
        (self.alpha * self.view_size as f64).round() as usize
    }

    /// The effective push-flood threshold (defence (ii)).
    pub fn effective_flood_threshold(&self) -> usize {
        self.flood_threshold.unwrap_or_else(|| self.alpha_count())
    }

    /// `⌈β·l1⌉` — pull requests sent per round and pulled IDs admitted to
    /// the renewed view.
    pub fn beta_count(&self) -> usize {
        (self.beta * self.view_size as f64).round() as usize
    }

    /// `⌈γ·l1⌉` — history-sample entries admitted to the renewed view.
    pub fn gamma_count(&self) -> usize {
        (self.gamma * self.view_size as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        let cfg = BrahmsConfig::paper_defaults(200, 160);
        cfg.validate();
        assert_eq!(cfg.view_size, 200);
        assert_eq!(cfg.sample_size, 160);
        assert_eq!(
            cfg.alpha_count() + cfg.beta_count() + cfg.gamma_count(),
            200
        );
    }

    #[test]
    fn counts_round_correctly() {
        let cfg = BrahmsConfig {
            view_size: 10,
            sample_size: 10,
            alpha: 0.45,
            beta: 0.35,
            gamma: 0.2,
            flood_threshold: None,
        };
        cfg.validate();
        assert_eq!(cfg.alpha_count(), 5); // 4.5 rounds to 5
        assert_eq!(cfg.beta_count(), 4); // 3.5 rounds to 4
        assert_eq!(cfg.gamma_count(), 2);
    }

    #[test]
    #[should_panic(expected = "must equal 1")]
    fn fractions_must_sum_to_one() {
        BrahmsConfig {
            view_size: 10,
            sample_size: 10,
            alpha: 0.5,
            beta: 0.5,
            gamma: 0.5,
            flood_threshold: None,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "l1 must be positive")]
    fn zero_view_rejected() {
        BrahmsConfig::paper_defaults(0, 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fraction_rejected() {
        BrahmsConfig {
            view_size: 10,
            sample_size: 10,
            alpha: -0.2,
            beta: 1.0,
            gamma: 0.2,
            flood_threshold: None,
        }
        .validate();
    }
}
