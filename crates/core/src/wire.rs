//! Wire format for RAPTEE protocol messages.
//!
//! The simulation moves typed messages in-process for speed; a
//! deployment speaks bytes over TCP. This module defines the canonical
//! encoding of every protocol message, so the two paths share one
//! vocabulary:
//!
//! ```text
//! byte 0       message tag
//! bytes 1..    fixed fields, little-endian
//! lists        u32 length prefix, then u64 node IDs
//! ```
//!
//! Two properties matter for the protocol's security story and are
//! enforced by tests:
//!
//! * **round-trip** — `decode(encode(m)) == m` for every message;
//! * **shape-indistinguishability** — a trusted view-swap payload is
//!   encoded exactly like a pull answer of the same length (tag and
//!   layout), so an eavesdropper seeing (encrypted, length-preserved)
//!   traffic cannot tell trusted exchanges from ordinary pulls.
//!
//! All payloads are meant to travel inside a
//! [`raptee_net::SecureChannel`]; the encoding itself carries no
//! secrets.

use raptee_crypto::auth::{AuthChallenge, AuthConfirm, AuthResponse, NONCE_LEN};
use raptee_net::{MessageMeter, NodeId};

/// A RAPTEE wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Gossip push: the sender advertises its own ID.
    Push {
        /// The advertised identifier.
        sender: NodeId,
    },
    /// Pull request (always preceded by the authentication exchange).
    PullRequest,
    /// Pull answer: the responder's full view. Also the encoding of the
    /// trusted view-swap payload — deliberately, see the module docs.
    PullAnswer {
        /// The advertised view entries.
        ids: Vec<NodeId>,
    },
    /// Authentication step 1.
    AuthChallenge(AuthChallenge),
    /// Authentication step 2.
    AuthResponse(AuthResponse),
    /// Authentication step 3.
    AuthConfirm(AuthConfirm),
}

/// Message tags (first byte on the wire).
mod tag {
    pub const PUSH: u8 = 1;
    pub const PULL_REQUEST: u8 = 2;
    pub const PULL_ANSWER: u8 = 3;
    pub const AUTH_CHALLENGE: u8 = 4;
    pub const AUTH_RESPONSE: u8 = 5;
    pub const AUTH_CONFIRM: u8 = 6;
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is empty or shorter than the fixed fields require.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// A declared list length exceeds the remaining buffer.
    BadLength,
    /// Trailing bytes after a complete message.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadLength => write!(f, "declared length exceeds the buffer"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl Message {
    /// Encodes the message to bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Push { sender } => {
                let mut out = Vec::with_capacity(9);
                out.push(tag::PUSH);
                out.extend_from_slice(&sender.to_bytes());
                out
            }
            Message::PullRequest => vec![tag::PULL_REQUEST],
            Message::PullAnswer { ids } => {
                let mut out = Vec::with_capacity(5 + ids.len() * 8);
                out.push(tag::PULL_ANSWER);
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.to_bytes());
                }
                out
            }
            Message::AuthChallenge(c) => {
                let mut out = Vec::with_capacity(1 + NONCE_LEN);
                out.push(tag::AUTH_CHALLENGE);
                out.extend_from_slice(&c.nonce);
                out
            }
            Message::AuthResponse(r) => {
                let mut out = Vec::with_capacity(1 + NONCE_LEN + 32);
                out.push(tag::AUTH_RESPONSE);
                out.extend_from_slice(&r.nonce);
                out.extend_from_slice(&r.tag);
                out
            }
            Message::AuthConfirm(c) => {
                let mut out = Vec::with_capacity(33);
                out.push(tag::AUTH_CONFIRM);
                out.extend_from_slice(&c.tag);
                out
            }
        }
    }

    /// Decodes a message, requiring the buffer to contain exactly one.
    ///
    /// # Errors
    ///
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        let (msg, used) = Self::decode_prefix(buf)?;
        if used != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Decodes one message from the front of `buf`, returning it and the
    /// number of bytes consumed (for streaming decoders).
    ///
    /// # Errors
    ///
    /// See [`WireError`].
    pub fn decode_prefix(buf: &[u8]) -> Result<(Message, usize), WireError> {
        let (&t, rest) = buf.split_first().ok_or(WireError::Truncated)?;
        match t {
            tag::PUSH => {
                let bytes: [u8; 8] = rest
                    .get(..8)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .unwrap();
                Ok((
                    Message::Push {
                        sender: NodeId(u64::from_le_bytes(bytes)),
                    },
                    9,
                ))
            }
            tag::PULL_REQUEST => Ok((Message::PullRequest, 1)),
            tag::PULL_ANSWER => {
                let len_bytes: [u8; 4] = rest
                    .get(..4)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .unwrap();
                let len = u32::from_le_bytes(len_bytes) as usize;
                let body = rest.get(4..).ok_or(WireError::Truncated)?;
                let need = len.checked_mul(8).ok_or(WireError::BadLength)?;
                if body.len() < need {
                    return Err(WireError::BadLength);
                }
                let mut ids = Vec::with_capacity(len);
                for chunk in body[..need].chunks_exact(8) {
                    ids.push(NodeId(u64::from_le_bytes(chunk.try_into().unwrap())));
                }
                Ok((Message::PullAnswer { ids }, 1 + 4 + need))
            }
            tag::AUTH_CHALLENGE => {
                let nonce: [u8; NONCE_LEN] = rest
                    .get(..NONCE_LEN)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .unwrap();
                Ok((
                    Message::AuthChallenge(AuthChallenge { nonce }),
                    1 + NONCE_LEN,
                ))
            }
            tag::AUTH_RESPONSE => {
                let nonce: [u8; NONCE_LEN] = rest
                    .get(..NONCE_LEN)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .unwrap();
                let mac: [u8; 32] = rest
                    .get(NONCE_LEN..NONCE_LEN + 32)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .unwrap();
                Ok((
                    Message::AuthResponse(AuthResponse { nonce, tag: mac }),
                    1 + NONCE_LEN + 32,
                ))
            }
            tag::AUTH_CONFIRM => {
                let mac: [u8; 32] = rest
                    .get(..32)
                    .ok_or(WireError::Truncated)?
                    .try_into()
                    .unwrap();
                Ok((Message::AuthConfirm(AuthConfirm { tag: mac }), 33))
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

impl MessageMeter for Message {
    fn kind(&self) -> &'static str {
        match self {
            Message::Push { .. } => "push",
            Message::PullRequest => "pull-request",
            Message::PullAnswer { .. } => "pull-answer",
            Message::AuthChallenge(_) => "auth-challenge",
            Message::AuthResponse(_) => "auth-response",
            Message::AuthConfirm(_) => "auth-confirm",
        }
    }

    fn size_bytes(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Push { sender: NodeId(42) },
            Message::PullRequest,
            Message::PullAnswer { ids: vec![] },
            Message::PullAnswer {
                ids: (0..200).map(NodeId).collect(),
            },
            Message::AuthChallenge(AuthChallenge {
                nonce: [7; NONCE_LEN],
            }),
            Message::AuthResponse(AuthResponse {
                nonce: [9; NONCE_LEN],
                tag: [3; 32],
            }),
            Message::AuthConfirm(AuthConfirm { tag: [5; 32] }),
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(Message::decode(&bytes).unwrap(), msg, "{msg:?}");
            assert_eq!(msg.size_bytes(), bytes.len());
        }
    }

    #[test]
    fn streaming_decode() {
        let mut stream = Vec::new();
        for msg in samples() {
            stream.extend(msg.encode());
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < stream.len() {
            let (msg, used) = Message::decode_prefix(&stream[offset..]).unwrap();
            decoded.push(msg);
            offset += used;
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn truncation_detected() {
        for msg in samples() {
            let bytes = msg.encode();
            if bytes.len() > 1 {
                let cut = &bytes[..bytes.len() - 1];
                assert!(
                    Message::decode(cut).is_err(),
                    "truncated {msg:?} must not decode"
                );
            }
        }
        assert_eq!(Message::decode(&[]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(
            Message::decode(&[99]).unwrap_err(),
            WireError::UnknownTag(99)
        );
    }

    #[test]
    fn oversized_length_rejected() {
        // Claims 1M ids but carries none: must fail without allocating.
        let mut buf = vec![3u8]; // PULL_ANSWER
        buf.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert_eq!(Message::decode(&buf).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::PullRequest.encode();
        bytes.push(0);
        assert_eq!(
            Message::decode(&bytes).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn swap_payload_is_shape_identical_to_pull_answer() {
        // The trusted swap ships `c/2` entries as a PullAnswer; for equal
        // lengths the encodings are byte-layout identical, so encrypted
        // traffic does not reveal trusted exchanges.
        let swap_half = Message::PullAnswer {
            ids: (100..110).map(NodeId).collect(),
        };
        let ordinary = Message::PullAnswer {
            ids: (200..210).map(NodeId).collect(),
        };
        assert_eq!(swap_half.encode().len(), ordinary.encode().len());
        assert_eq!(swap_half.kind(), ordinary.kind());
    }

    #[test]
    fn encrypted_roundtrip_through_secure_channel() {
        use raptee_crypto::SecretKey;
        use raptee_net::SecureChannel;
        let base = SecretKey::from_seed(1);
        let mut tx = SecureChannel::new(&base, NodeId(1), NodeId(2));
        let mut rx = SecureChannel::new(&base, NodeId(1), NodeId(2));
        let msg = Message::PullAnswer {
            ids: (0..50).map(NodeId).collect(),
        };
        let ct = tx.seal_from_initiator(&msg.encode());
        let pt = rx.open_from_initiator(&ct);
        assert_eq!(Message::decode(&pt).unwrap(), msg);
        // Length preservation: ciphertext length = encoded length.
        assert_eq!(ct.len(), msg.encode().len());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_message() -> impl Strategy<Value = Message> {
        prop_oneof![
            any::<u64>().prop_map(|v| Message::Push { sender: NodeId(v) }),
            Just(Message::PullRequest),
            proptest::collection::vec(any::<u64>(), 0..300).prop_map(|v| Message::PullAnswer {
                ids: v.into_iter().map(NodeId).collect()
            }),
            any::<[u8; NONCE_LEN]>()
                .prop_map(|nonce| Message::AuthChallenge(AuthChallenge { nonce })),
            (any::<[u8; NONCE_LEN]>(), any::<[u8; 32]>())
                .prop_map(|(nonce, tag)| Message::AuthResponse(AuthResponse { nonce, tag })),
            any::<[u8; 32]>().prop_map(|tag| Message::AuthConfirm(AuthConfirm { tag })),
        ]
    }

    proptest! {
        /// Every encodable message round-trips.
        #[test]
        fn roundtrip(msg in arb_message()) {
            let bytes = msg.encode();
            prop_assert_eq!(Message::decode(&bytes).unwrap(), msg);
        }

        /// The decoder never panics on arbitrary bytes.
        #[test]
        fn decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Message::decode(&bytes);
        }

        /// decode_prefix consumption is consistent with encode length.
        #[test]
        fn prefix_consumption(msg in arb_message(), suffix in proptest::collection::vec(any::<u8>(), 0..32)) {
            let mut bytes = msg.encode();
            let encoded_len = bytes.len();
            bytes.extend_from_slice(&suffix);
            let (decoded, used) = Message::decode_prefix(&bytes).unwrap();
            prop_assert_eq!(decoded, msg);
            prop_assert_eq!(used, encoded_len);
        }
    }
}
