//! Byzantine eviction policies (paper Section IV-C).
//!
//! Trusted nodes "ignore part of the pulled IDs from untrusted nodes by
//! not passing them to the Brahms sampling component and by ignoring them
//! during the renewal of the pulled `β·l1` entries". The fraction ignored
//! is the *eviction rate*:
//!
//! * [`EvictionPolicy::Fixed`] — one system-wide constant in `[0, 1]`
//!   (the paper sweeps 0 %, 40 %, 60 %, 100 % in Figs. 5–8);
//! * [`EvictionPolicy::Adaptive`] — per-node and per-round: bounded
//!   between 20 % (when ≥ 80 % of this round's contacts were trusted) and
//!   80 % (when ≤ 20 % were), linear in between (Fig. 9). Intuition: the
//!   more IDs a trusted node already received from trusted peers this
//!   round, the less it needs untrusted input — and vice versa.

/// How a trusted node chooses the fraction of untrusted-pulled IDs to
/// ignore each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// A constant eviction rate in `[0, 1]` for the whole run.
    Fixed(f64),
    /// The paper's adaptive rule: `rate = clamp(1 − trusted_share, lo, hi)`.
    Adaptive {
        /// Lower bound on the rate (paper: 0.2).
        lo: f64,
        /// Upper bound on the rate (paper: 0.8).
        hi: f64,
    },
}

impl EvictionPolicy {
    /// The paper's adaptive policy with its published 20 %/80 % bounds.
    pub fn adaptive() -> Self {
        EvictionPolicy::Adaptive { lo: 0.2, hi: 0.8 }
    }

    /// No eviction (0 % rate) — also what plain-Brahms behaviour uses.
    pub fn none() -> Self {
        EvictionPolicy::Fixed(0.0)
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics when a rate or bound leaves `[0, 1]` or `lo > hi`.
    pub fn validate(&self) {
        match *self {
            EvictionPolicy::Fixed(r) => {
                assert!((0.0..=1.0).contains(&r), "eviction rate must be in [0,1]");
            }
            EvictionPolicy::Adaptive { lo, hi } => {
                assert!(
                    (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi),
                    "bounds must be in [0,1]"
                );
                assert!(lo <= hi, "adaptive lower bound must not exceed upper bound");
            }
        }
    }

    /// The eviction rate for a round in which `trusted_share` of the
    /// node's pull contacts were trusted (`trusted_share ∈ [0, 1]`).
    ///
    /// For the adaptive policy the paper's rule is linear between the two
    /// bounds: 80 % when the trusted share is at or below 20 %, 20 % when
    /// it is at or above 80 %.
    pub fn rate(&self, trusted_share: f64) -> f64 {
        match *self {
            EvictionPolicy::Fixed(r) => r,
            EvictionPolicy::Adaptive { lo, hi } => (1.0 - trusted_share).clamp(lo, hi),
        }
    }

    /// A short label for experiment reports ("ER-40%", "adaptive").
    pub fn label(&self) -> String {
        match *self {
            EvictionPolicy::Fixed(r) => format!("ER-{:.0}%", r * 100.0),
            EvictionPolicy::Adaptive { .. } => "adaptive".to_string(),
        }
    }
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy::adaptive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_is_constant() {
        let p = EvictionPolicy::Fixed(0.6);
        p.validate();
        for share in [0.0, 0.3, 1.0] {
            assert_eq!(p.rate(share), 0.6);
        }
    }

    #[test]
    fn adaptive_matches_paper_rule() {
        let p = EvictionPolicy::adaptive();
        p.validate();
        // ≤ 20 % trusted contacts → 80 % eviction.
        assert_eq!(p.rate(0.0), 0.8);
        assert_eq!(p.rate(0.2), 0.8);
        // ≥ 80 % trusted contacts → 20 % eviction.
        assert_eq!(p.rate(0.8), 0.2);
        assert_eq!(p.rate(1.0), 0.2);
        // Linear in between: share 0.5 → rate 0.5.
        assert!((p.rate(0.5) - 0.5).abs() < 1e-12);
        assert!((p.rate(0.65) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn adaptive_is_monotone_decreasing() {
        let p = EvictionPolicy::adaptive();
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let r = p.rate(i as f64 / 100.0);
            assert!(r <= prev + 1e-12);
            prev = r;
        }
    }

    #[test]
    fn labels() {
        assert_eq!(EvictionPolicy::Fixed(0.4).label(), "ER-40%");
        assert_eq!(EvictionPolicy::adaptive().label(), "adaptive");
        assert_eq!(EvictionPolicy::none().label(), "ER-0%");
    }

    #[test]
    fn default_is_adaptive() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::adaptive());
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn out_of_range_fixed_rejected() {
        EvictionPolicy::Fixed(1.2).validate();
    }

    #[test]
    #[should_panic(expected = "not exceed")]
    fn inverted_bounds_rejected() {
        EvictionPolicy::Adaptive { lo: 0.9, hi: 0.1 }.validate();
    }
}
