//! The RAPTEE node: modified Brahms + mutual auth + trusted comms +
//! Byzantine eviction.
//!
//! All nodes — honest untrusted ones and trusted ones alike — run this
//! wrapper; the only behavioural differences are gated on holding the
//! attested group key, never on message shapes, so an eavesdropper cannot
//! tell the two apart (Section IV-C of the paper explains why trusted
//! nodes must keep issuing pull requests like everyone else).
//!
//! Per round, the caller (simulation engine, test, or example):
//!
//! 1. [`RapteeNode::plan_round`] — Brahms targets; resets contact counters.
//! 2. delivers pushes via [`RapteeNode::record_push`];
//! 3. for each planned pull, runs the handshake
//!    ([`RapteeNode::run_handshake`] or the message-level `auth_*`
//!    methods) and then either
//!    [`RapteeNode::trusted_swap`] (both trusted) or
//!    [`RapteeNode::record_untrusted_pull`] (everything else);
//! 4. [`RapteeNode::finish_round`] — eviction, then the Brahms round
//!    finalisation (attack blocking, view renewal, sampling).

use crate::eviction::EvictionPolicy;
use raptee_brahms::{BrahmsConfig, BrahmsNode, RoundPlan, RoundReport};
use raptee_crypto::auth::{
    AuthChallenge, AuthConfirm, AuthOutcome, AuthResponse, Authenticator, InitiatorPending,
    ResponderPending, NONCE_LEN,
};
use raptee_crypto::SecretKey;
use raptee_gossip::exchange::{integrate, prepare_buffer};
use raptee_gossip::protocols::raptee_trusted;
use raptee_gossip::view::View;
use raptee_net::NodeId;

/// Full RAPTEE node configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RapteeConfig {
    /// The underlying Brahms parameters.
    pub brahms: BrahmsConfig,
    /// The Byzantine-eviction policy applied by trusted nodes.
    pub eviction: EvictionPolicy,
}

impl RapteeConfig {
    /// Paper-default Brahms parameters with the adaptive eviction policy.
    pub fn paper_defaults(view_size: usize) -> Self {
        Self {
            brahms: BrahmsConfig::paper_defaults(view_size, view_size),
            eviction: EvictionPolicy::adaptive(),
        }
    }

    /// Validates both halves.
    ///
    /// # Panics
    ///
    /// Propagates the panics of the component validators.
    pub fn validate(&self) {
        self.brahms.validate();
        self.eviction.validate();
    }
}

/// Result of finalising a RAPTEE round.
#[derive(Debug, Clone, PartialEq)]
pub struct RapteeRoundOutcome {
    /// The Brahms-level report (renewal, flood detection, counts).
    pub report: RoundReport,
    /// The eviction rate applied this round (0 for untrusted nodes).
    pub eviction_rate: f64,
    /// How many pulled IDs were evicted.
    pub evicted: usize,
    /// Number of pulled IDs actually admitted to Brahms (post-eviction,
    /// plus trusted-swap IDs). A count rather than the ID list: the
    /// round loop streams the survivors straight into Brahms instead of
    /// materialising them (the engine's discovery metric reads the view).
    pub admitted_pulled: usize,
}

/// A RAPTEE node.
///
/// See the crate-level docs for a usage sketch and
/// [`crate::provisioning`] for how trusted nodes obtain the group key.
#[derive(Debug, Clone)]
pub struct RapteeNode {
    brahms: BrahmsNode,
    config: RapteeConfig,
    authenticator: Authenticator,
    trusted: bool,
    /// Directory of peers that have mutually authenticated as trusted —
    /// the "mutual trusted capacity" trusted nodes learn (paper
    /// Section III-A). Aged like a framework view; partner selection for
    /// the proactive trusted exchange probes the oldest entry
    /// (round-robin). Never revealed to untrusted parties.
    directory: View,
    pulled_untrusted: Vec<NodeId>,
    pulled_trusted: Vec<NodeId>,
    contacts_total: u32,
    contacts_trusted: u32,
    last_eviction_rate: f64,
}

impl RapteeNode {
    /// Creates an *untrusted* node: it generates its own random secret
    /// key, so its handshakes never conclude `Trusted` with anyone.
    pub fn new_untrusted(
        id: NodeId,
        config: RapteeConfig,
        bootstrap: &[NodeId],
        seed: u64,
    ) -> Self {
        // Derive the key from both the node seed and the ID through the
        // keyed PRF; unique per node, unrelated to the group key.
        let key = SecretKey::from_seed(seed).derive("raptee-untrusted-node-key", &id.to_bytes());
        Self::with_key(id, config, bootstrap, seed, key, false)
    }

    /// Creates a *trusted* node holding the attested `group_key` (see
    /// [`crate::provisioning::provision_trusted_key`]).
    pub fn new_trusted(
        id: NodeId,
        config: RapteeConfig,
        bootstrap: &[NodeId],
        seed: u64,
        group_key: SecretKey,
    ) -> Self {
        Self::with_key(id, config, bootstrap, seed, group_key, true)
    }

    fn with_key(
        id: NodeId,
        config: RapteeConfig,
        bootstrap: &[NodeId],
        seed: u64,
        key: SecretKey,
        trusted: bool,
    ) -> Self {
        config.validate();
        Self {
            brahms: BrahmsNode::new(id, config.brahms, bootstrap, seed),
            directory: View::new(id, config.brahms.view_size),
            config,
            authenticator: Authenticator::new(key),
            trusted,
            pulled_untrusted: Vec::new(),
            pulled_trusted: Vec::new(),
            contacts_total: 0,
            contacts_trusted: 0,
            last_eviction_rate: 0.0,
        }
    }

    /// Cold rejoin after a crash–restart: the Brahms layer comes back
    /// from a fresh bootstrap ([`raptee_brahms::BrahmsNode::rejoin_cold`]) and the
    /// trusted directory is emptied — authenticated trust is a live
    /// property, so a returning node must re-handshake its trusted
    /// peers from scratch (the re-attested enclave keeps the sealed
    /// group key, which is why `trusted` itself survives the restart —
    /// see the sealing test in [`crate::provisioning`]).
    pub fn rejoin_cold(&mut self, bootstrap: &[NodeId], seed: u64) {
        self.brahms.rejoin_cold(bootstrap, seed);
        self.directory = View::new(self.id(), self.config.brahms.view_size);
        self.pulled_untrusted.clear();
        self.pulled_trusted.clear();
        self.contacts_total = 0;
        self.contacts_trusted = 0;
        self.last_eviction_rate = 0.0;
    }

    /// Warm rejoin after a crash–restart: Brahms probe-revalidates the
    /// persisted view and samples, and directory entries whose trusted
    /// peer died while this node was down are purged — the trusted
    /// re-handshake then happens opportunistically against the
    /// survivors. Returns `(view entries purged, samplers reset)`.
    pub fn rejoin_warm<F: FnMut(NodeId) -> bool>(&mut self, mut is_alive: F) -> (usize, usize) {
        self.directory.retain(|e| is_alive(e.id));
        self.pulled_untrusted.clear();
        self.pulled_trusted.clear();
        self.brahms.rejoin_warm(is_alive)
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.brahms.id()
    }

    /// Whether this node runs inside an (attested, simulated) enclave.
    pub fn is_trusted(&self) -> bool {
        self.trusted
    }

    /// The configuration.
    pub fn config(&self) -> &RapteeConfig {
        &self.config
    }

    /// The underlying Brahms node (views, samplers, counters).
    pub fn brahms(&self) -> &BrahmsNode {
        &self.brahms
    }

    /// Mutable access to the underlying Brahms node — for sampler
    /// validation and tests.
    pub fn brahms_mut(&mut self) -> &mut BrahmsNode {
        &mut self.brahms
    }

    /// The eviction rate applied in the most recent round.
    pub fn last_eviction_rate(&self) -> f64 {
        self.last_eviction_rate
    }

    /// How long a directory entry survives without being refreshed by an
    /// *opportunistic* (Brahms-pull-driven) authentication. Ties the
    /// trusted overlay's persistence to the presence of trusted IDs in
    /// dynamic views: under a 100 % eviction rate trusted IDs spread
    /// poorly, opportunistic meetings dry up, and the directory drains —
    /// the slowdown Fig. 8 of the paper attributes to that policy.
    pub const DIRECTORY_TTL: u32 = 30;

    /// Starts a round: resets the per-round contact accounting, ages the
    /// trusted directory (expiring stale entries), and plans the Brahms
    /// pushes/pulls.
    pub fn plan_round(&mut self) -> RoundPlan {
        let mut plan = RoundPlan::default();
        self.plan_round_into(&mut plan);
        plan
    }

    /// [`RapteeNode::plan_round`] into a caller-owned plan (cleared and
    /// refilled) — the engine reuses one plan per actor across rounds.
    pub fn plan_round_into(&mut self, plan: &mut RoundPlan) {
        self.contacts_total = 0;
        self.contacts_trusted = 0;
        self.directory.increase_age();
        self.directory.retain(|e| e.age <= Self::DIRECTORY_TTL);
        self.brahms.plan_round_into(plan);
    }

    /// The peer this trusted node proactively initiates its trusted
    /// exchange with this round: the *oldest* directory entry —
    /// round-robin probing, criterion (1) of the framework instantiation.
    /// `None` for untrusted nodes or before any trusted peer was met.
    pub fn trusted_partner(&self) -> Option<NodeId> {
        if !self.trusted {
            return None;
        }
        self.directory.oldest().map(|e| e.id)
    }

    /// The directory of known trusted peers (read-only; exposed for
    /// metrics and tests).
    pub fn directory(&self) -> &View {
        &self.directory
    }

    /// Records that `peer` mutually authenticated as trusted. Resets the
    /// entry's age when already known (the probe succeeded), which is
    /// what keeps the oldest-first selection cycling.
    pub fn note_trusted_peer(&mut self, peer: NodeId) {
        if self.directory.contains(peer) {
            self.directory.remove(peer);
        }
        self.directory.insert_fresh(peer);
    }

    /// Removes an unresponsive directory entry (crashed trusted peer).
    pub fn forget_trusted_peer(&mut self, peer: NodeId) {
        self.directory.remove(peer);
    }

    /// Records an incoming push.
    pub fn record_push(&mut self, sender: NodeId) {
        self.brahms.record_push(sender);
    }

    /// Answers a pull request with the full view — identical for trusted
    /// and untrusted nodes, by design.
    pub fn pull_answer(&self) -> Vec<NodeId> {
        self.brahms.pull_answer()
    }

    /// Records a pull answer received from a peer that did *not*
    /// authenticate as trusted. Subject to end-of-round eviction when
    /// this node is trusted.
    pub fn record_untrusted_pull(&mut self, ids: &[NodeId]) {
        self.contacts_total += 1;
        self.pulled_untrusted.extend(ids.iter().copied());
    }

    /// Records a pull answer received from an *authenticated trusted*
    /// peer outside the view-swap path (used by the swap-disabled
    /// ablation): exempt from eviction and counted as a trusted contact.
    pub fn record_trusted_pull(&mut self, ids: &[NodeId]) {
        self.contacts_total += 1;
        self.contacts_trusted += 1;
        self.pulled_trusted.extend(ids.iter().copied());
    }

    // ------------------------------------------------------------------
    // Mutual authentication (message-level API + in-process convenience)
    // ------------------------------------------------------------------

    /// Handshake step 1 (initiator): fresh challenge.
    pub fn auth_initiate(&mut self) -> (AuthChallenge, InitiatorPending) {
        let nonce = self.fresh_nonce();
        self.authenticator.initiate(nonce)
    }

    /// Handshake step 2 (responder).
    pub fn auth_respond(&mut self, challenge: &AuthChallenge) -> (AuthResponse, ResponderPending) {
        let nonce = self.fresh_nonce();
        self.authenticator.respond(challenge, nonce)
    }

    /// Handshake step 3 (initiator): verdict + confirm message (always
    /// produced, to keep the wire pattern constant).
    pub fn auth_finish_initiator(
        &self,
        pending: &InitiatorPending,
        response: &AuthResponse,
    ) -> (AuthOutcome, AuthConfirm) {
        self.authenticator.verify_response(pending, response)
    }

    /// Handshake step 4 (responder): verdict.
    pub fn auth_finish_responder(
        &self,
        pending: &ResponderPending,
        confirm: &AuthConfirm,
    ) -> AuthOutcome {
        self.authenticator.verify_confirm(pending, confirm)
    }

    /// Runs the complete four-step handshake between two in-process nodes
    /// and returns (initiator verdict, responder verdict). The verdicts
    /// agree unless messages were tampered with in flight.
    pub fn run_handshake(initiator: &mut Self, responder: &mut Self) -> (AuthOutcome, AuthOutcome) {
        let (challenge, i_pending) = initiator.auth_initiate();
        let (response, r_pending) = responder.auth_respond(&challenge);
        let (i_out, confirm) = initiator.auth_finish_initiator(&i_pending, &response);
        let r_out = responder.auth_finish_responder(&r_pending, &confirm);
        (i_out, r_out)
    }

    fn fresh_nonce(&mut self) -> [u8; NONCE_LEN] {
        let rng = self.brahms.rng_mut();
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
        nonce[8..].copy_from_slice(&rng.next_u64().to_le_bytes());
        nonce
    }

    // ------------------------------------------------------------------
    // Trusted communications (Section IV-B)
    // ------------------------------------------------------------------

    /// Performs the trusted peer-sampling exchange between two mutually
    /// authenticated trusted nodes:
    ///
    /// 1. each swaps half of its dynamic view with the other (Jelasity
    ///    framework, swap semantics, initiator self-insertion);
    /// 2. each records the received IDs into its pulled-ID stream, so
    ///    they reach the sampler and compete for the `β·l1` slice of the
    ///    next view renewal.
    ///
    /// Both sides count the exchange as a trusted contact for the
    /// adaptive eviction rule.
    ///
    /// # Panics
    ///
    /// Panics if either node is not trusted — the caller must only invoke
    /// this after a successful mutual authentication.
    pub fn trusted_swap(initiator: &mut Self, responder: &mut Self) {
        Self::trusted_swap_kind(initiator, responder, true);
    }

    /// [`RapteeNode::trusted_swap`] with explicit provenance:
    /// `opportunistic = true` for exchanges triggered by a Brahms pull
    /// hitting a trusted peer (refreshes directory ages — real, view-
    /// driven contact), `false` for the proactive directory-driven round
    /// exchange (inserts unknown peers but does not refresh ages, so a
    /// directory cut off from view-driven contact eventually drains).
    pub fn trusted_swap_kind(initiator: &mut Self, responder: &mut Self, opportunistic: bool) {
        assert!(
            initiator.trusted && responder.trusted,
            "trusted_swap requires two authenticated trusted nodes"
        );
        let cfg = raptee_trusted(initiator.config.brahms.view_size);
        // Dynamic-view halves are prepared on both sides first (the swap
        // is symmetric), then integrated.
        let buf_i = {
            let (view, rng) = initiator.brahms.view_and_rng_mut();
            prepare_buffer(view, &cfg, rng)
        };
        let buf_r = {
            let (view, rng) = responder.brahms.view_and_rng_mut();
            prepare_buffer(view, &cfg, rng)
        };
        {
            let (view, rng) = initiator.brahms.view_and_rng_mut();
            integrate(view, &buf_r, &cfg, rng);
        }
        {
            let (view, rng) = responder.brahms.view_and_rng_mut();
            integrate(view, &buf_i, &cfg, rng);
        }
        initiator.note_trusted_exchange(buf_r.iter().map(|e| e.id));
        responder.note_trusted_exchange(buf_i.iter().map(|e| e.id));

        // Directory gossip: the pair also swaps halves of their trusted
        // directories (all entries are authenticated trusted peers, and
        // the sender runs attested code, so the exchange cannot inject
        // fakes) and refreshes each other's entry. This is what lets a
        // sparse trusted population (t = 1 %) find itself and keep
        // meeting every round — the "dissemination-efficient" exchange
        // among trusted nodes of Section III-A.
        let dir_cfg = raptee_trusted(initiator.directory.capacity());
        let dir_i = prepare_buffer(
            &mut initiator.directory,
            &dir_cfg,
            initiator.brahms.rng_mut(),
        );
        let dir_r = prepare_buffer(
            &mut responder.directory,
            &dir_cfg,
            responder.brahms.rng_mut(),
        );
        integrate(
            &mut initiator.directory,
            &dir_r,
            &dir_cfg,
            initiator.brahms.rng_mut(),
        );
        integrate(
            &mut responder.directory,
            &dir_i,
            &dir_cfg,
            responder.brahms.rng_mut(),
        );
        if opportunistic {
            initiator.note_trusted_peer(responder.id());
            responder.note_trusted_peer(initiator.id());
        } else {
            // Known peers keep their age; unknown ones join fresh.
            let (i_id, r_id) = (initiator.id(), responder.id());
            initiator.directory.insert_fresh(r_id);
            responder.directory.insert_fresh(i_id);
        }
    }

    fn note_trusted_exchange(&mut self, received: impl Iterator<Item = NodeId>) {
        self.contacts_total += 1;
        self.contacts_trusted += 1;
        self.pulled_trusted.extend(received);
    }

    // ------------------------------------------------------------------
    // Round finalisation (Section IV-C)
    // ------------------------------------------------------------------

    /// The eviction rate implied by this round's contact mix (0 for
    /// untrusted nodes).
    fn round_eviction_rate(&self, contacts_total: u32) -> f64 {
        if !self.trusted {
            return 0.0;
        }
        let trusted_share = if contacts_total == 0 {
            0.0
        } else {
            f64::from(self.contacts_trusted) / f64::from(contacts_total)
        };
        self.config.eviction.rate(trusted_share)
    }

    /// Finalises the round: applies Byzantine eviction to the IDs pulled
    /// from untrusted peers (trusted nodes only), forwards the survivors
    /// and the trusted-swap IDs to Brahms, and runs the Brahms round
    /// finalisation.
    pub fn finish_round(&mut self) -> RapteeRoundOutcome {
        let rate = self.round_eviction_rate(self.contacts_total);
        self.last_eviction_rate = rate;

        let before = self.pulled_untrusted.len();
        if rate > 0.0 {
            // In-place Bernoulli filter; expected surviving share 1-rate.
            // `retain` visits elements in insertion order, so the RNG
            // draw sequence matches the historical drain-and-filter.
            let rng = self.brahms.rng_mut();
            self.pulled_untrusted.retain(|_| !rng.chance(rate));
        }
        let evicted = before - self.pulled_untrusted.len();
        let admitted = self.pulled_untrusted.len() + self.pulled_trusted.len();

        self.brahms.record_pulled(&self.pulled_untrusted);
        self.brahms.record_pulled(&self.pulled_trusted);
        self.pulled_untrusted.clear();
        self.pulled_trusted.clear();
        let report = self.brahms.finish_round();
        RapteeRoundOutcome {
            report,
            eviction_rate: rate,
            evicted,
            admitted_pulled: admitted,
        }
    }

    /// [`RapteeNode::finish_round`] over caller-owned streams — the
    /// parallel engine path. The engine defers untrusted pull answers
    /// (instead of copying them into per-node buffers) and reconstructs
    /// them at finalisation time into per-**worker** arenas:
    ///
    /// * `pushed` — the round's delivered push senders, already filtered
    ///   of this node's own ID (`record_push` semantics);
    /// * `untrusted_pulled` — the reconstructed untrusted pull-answer
    ///   stream, in delivery order, *unfiltered* (eviction draws happen
    ///   per element before the self-ID filter, exactly like the
    ///   buffered path);
    /// * `untrusted_contacts` — how many untrusted pull answers the
    ///   stream represents (the deferred `record_untrusted_pull` contact
    ///   count; trusted contacts were recorded on the node directly);
    /// * `pulled_scratch` / `scratch` — worker-owned reusable buffers.
    ///
    /// The RNG draw sequence is bit-identical to the buffered path on
    /// identical streams.
    pub fn finish_round_streamed(
        &mut self,
        pushed: &[NodeId],
        untrusted_pulled: &mut Vec<NodeId>,
        untrusted_contacts: u32,
        pulled_scratch: &mut Vec<NodeId>,
        scratch: &mut raptee_brahms::FinishScratch,
    ) -> RapteeRoundOutcome {
        // Streamed and buffered untrusted-pull delivery cannot be mixed
        // within one round: buffered IDs would be skipped now (their
        // contacts double-counted) and leak into the next round.
        debug_assert!(
            self.pulled_untrusted.is_empty(),
            "record_untrusted_pull and finish_round_streamed are mutually exclusive in a round"
        );
        let rate = self.round_eviction_rate(self.contacts_total + untrusted_contacts);
        self.last_eviction_rate = rate;

        let before = untrusted_pulled.len();
        if rate > 0.0 {
            // In-place Bernoulli filter, element order = delivery order,
            // so the draw sequence matches the buffered path.
            let rng = self.brahms.rng_mut();
            untrusted_pulled.retain(|_| !rng.chance(rate));
        }
        let evicted = before - untrusted_pulled.len();
        let admitted = untrusted_pulled.len() + self.pulled_trusted.len();

        // `record_pulled` semantics: untrusted survivors first, then the
        // trusted-swap IDs, both minus this node's own ID.
        let id = self.id();
        pulled_scratch.clear();
        pulled_scratch.extend(untrusted_pulled.iter().copied().filter(|&i| i != id));
        pulled_scratch.extend(self.pulled_trusted.iter().copied().filter(|&i| i != id));
        self.pulled_trusted.clear();

        let report = self
            .brahms
            .finish_round_with(pushed, pulled_scratch, scratch);
        RapteeRoundOutcome {
            report,
            eviction_rate: rate,
            evicted,
            admitted_pulled: admitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptee_crypto::auth::AuthOutcome;

    fn cfg(eviction: EvictionPolicy) -> RapteeConfig {
        RapteeConfig {
            brahms: BrahmsConfig::paper_defaults(10, 10),
            eviction,
        }
    }

    fn boot(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn trusted(id: u64, seed: u64, eviction: EvictionPolicy) -> RapteeNode {
        RapteeNode::new_trusted(
            NodeId(id),
            cfg(eviction),
            &boot(100..110),
            seed,
            SecretKey::from_seed(42),
        )
    }

    fn untrusted(id: u64, seed: u64) -> RapteeNode {
        RapteeNode::new_untrusted(
            NodeId(id),
            cfg(EvictionPolicy::adaptive()),
            &boot(100..110),
            seed,
        )
    }

    #[test]
    fn trusted_pair_authenticates() {
        let mut a = trusted(1, 1, EvictionPolicy::adaptive());
        let mut b = trusted(2, 2, EvictionPolicy::adaptive());
        let (ia, ib) = RapteeNode::run_handshake(&mut a, &mut b);
        assert_eq!(ia, AuthOutcome::Trusted);
        assert_eq!(ib, AuthOutcome::Trusted);
    }

    #[test]
    fn mixed_pairs_do_not_authenticate() {
        let mut t = trusted(1, 1, EvictionPolicy::adaptive());
        let mut u = untrusted(2, 2);
        let mut u2 = untrusted(3, 3);
        assert_eq!(
            RapteeNode::run_handshake(&mut t, &mut u),
            (AuthOutcome::Untrusted, AuthOutcome::Untrusted)
        );
        assert_eq!(
            RapteeNode::run_handshake(&mut u, &mut u2),
            (AuthOutcome::Untrusted, AuthOutcome::Untrusted)
        );
    }

    #[test]
    fn untrusted_nodes_have_distinct_keys() {
        // Two untrusted nodes created from close seeds must not share a
        // key (they would otherwise mutually "trust").
        let mut a = untrusted(1, 7);
        let mut b = untrusted(2, 8);
        let (oa, ob) = RapteeNode::run_handshake(&mut a, &mut b);
        assert_eq!(oa, AuthOutcome::Untrusted);
        assert_eq!(ob, AuthOutcome::Untrusted);
    }

    #[test]
    fn eviction_full_rate_drops_all_untrusted_pulls() {
        let mut t = trusted(1, 1, EvictionPolicy::Fixed(1.0));
        t.plan_round();
        t.record_push(NodeId(200));
        t.record_untrusted_pull(&boot(300..340));
        let out = t.finish_round();
        assert_eq!(out.eviction_rate, 1.0);
        assert_eq!(out.evicted, 40);
        assert_eq!(out.admitted_pulled, 0);
        // No pulled IDs admitted → Brahms treats the round as starved.
        assert!(!out.report.view_renewed);
    }

    #[test]
    fn eviction_zero_rate_admits_everything() {
        let mut t = trusted(1, 1, EvictionPolicy::none());
        t.plan_round();
        t.record_untrusted_pull(&boot(300..340));
        let out = t.finish_round();
        assert_eq!(out.evicted, 0);
        assert_eq!(out.admitted_pulled, 40);
    }

    #[test]
    fn eviction_statistics_match_rate() {
        let mut evicted_total = 0usize;
        let n_ids = 200usize;
        let reps = 50;
        for seed in 0..reps {
            let mut t = trusted(1, seed, EvictionPolicy::Fixed(0.6));
            t.plan_round();
            t.record_untrusted_pull(&boot(1000..(1000 + n_ids as u64)));
            evicted_total += t.finish_round().evicted;
        }
        let rate = evicted_total as f64 / (n_ids * reps as usize) as f64;
        assert!((rate - 0.6).abs() < 0.03, "empirical eviction rate {rate}");
    }

    #[test]
    fn untrusted_nodes_never_evict() {
        let mut u = untrusted(1, 1);
        u.plan_round();
        u.record_untrusted_pull(&boot(300..340));
        let out = u.finish_round();
        assert_eq!(out.eviction_rate, 0.0);
        assert_eq!(out.evicted, 0);
    }

    #[test]
    fn adaptive_rate_follows_contact_mix() {
        // All contacts untrusted → share 0 → rate 0.8.
        let mut t = trusted(1, 1, EvictionPolicy::adaptive());
        t.plan_round();
        t.record_untrusted_pull(&boot(300..310));
        assert!((t.finish_round().eviction_rate - 0.8).abs() < 1e-12);

        // Half of the contacts trusted → rate 0.5.
        let mut a = trusted(1, 1, EvictionPolicy::adaptive());
        let mut b = trusted(2, 2, EvictionPolicy::adaptive());
        a.plan_round();
        b.plan_round();
        RapteeNode::trusted_swap(&mut a, &mut b);
        a.record_untrusted_pull(&boot(300..310));
        let out = a.finish_round();
        assert!(
            (out.eviction_rate - 0.5).abs() < 1e-12,
            "rate {}",
            out.eviction_rate
        );
    }

    #[test]
    fn no_contacts_means_max_adaptive_rate_but_nothing_to_evict() {
        let mut t = trusted(1, 1, EvictionPolicy::adaptive());
        t.plan_round();
        let out = t.finish_round();
        assert_eq!(out.eviction_rate, 0.8);
        assert_eq!(out.evicted, 0);
    }

    #[test]
    fn trusted_swap_exchanges_views_and_feeds_pulled() {
        let mut a = RapteeNode::new_trusted(
            NodeId(1),
            cfg(EvictionPolicy::none()),
            &boot(100..110),
            1,
            SecretKey::from_seed(42),
        );
        let mut b = RapteeNode::new_trusted(
            NodeId(2),
            cfg(EvictionPolicy::none()),
            &boot(200..210),
            2,
            SecretKey::from_seed(42),
        );
        a.plan_round();
        b.plan_round();
        RapteeNode::trusted_swap(&mut a, &mut b);
        // Views exchanged halves.
        assert!(a.brahms().view().ids().any(|i| (200..210).contains(&i.0)));
        assert!(b.brahms().view().ids().any(|i| (100..110).contains(&i.0)));
        // Self-links crossed over.
        assert!(b.brahms().view().contains(NodeId(1)));
        // Received IDs count as pulled: with a push the round renews.
        a.record_push(NodeId(150));
        let out = a.finish_round();
        assert!(out.report.view_renewed);
        assert!(out.admitted_pulled > 0);
        assert!(a.brahms().view().invariants_hold());
    }

    #[test]
    #[should_panic(expected = "requires two authenticated trusted nodes")]
    fn swap_with_untrusted_panics() {
        let mut t = trusted(1, 1, EvictionPolicy::adaptive());
        let mut u = untrusted(2, 2);
        RapteeNode::trusted_swap(&mut t, &mut u);
    }

    #[test]
    fn plan_round_resets_contact_counters() {
        let mut a = trusted(1, 1, EvictionPolicy::adaptive());
        let mut b = trusted(2, 2, EvictionPolicy::adaptive());
        a.plan_round();
        b.plan_round();
        RapteeNode::trusted_swap(&mut a, &mut b);
        a.finish_round();
        // New round: no contacts yet, so an untrusted-only round gets the
        // maximal adaptive rate again.
        a.plan_round();
        a.record_untrusted_pull(&boot(300..310));
        assert!((a.finish_round().eviction_rate - 0.8).abs() < 1e-12);
    }

    #[test]
    fn wire_behaviour_identical_for_trusted_and_untrusted() {
        // Same plan sizes, same pull answer semantics: nothing observable
        // distinguishes a trusted node before authentication.
        let mut t = trusted(1, 5, EvictionPolicy::adaptive());
        let mut u = untrusted(2, 5);
        let pt = t.plan_round();
        let pu = u.plan_round();
        assert_eq!(pt.push_targets.len(), pu.push_targets.len());
        assert_eq!(pt.pull_targets.len(), pu.pull_targets.len());
        assert_eq!(t.pull_answer().len(), u.pull_answer().len());
    }
}
