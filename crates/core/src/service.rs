//! The peer-sampling service facade.
//!
//! Upper-layer protocols (dissemination, overlay construction,
//! aggregation) consume peer sampling through one narrow interface:
//! "give me a peer that approximates a uniform random draw of the live
//! membership". [`PeerSamplingService`] is that interface, implemented by
//! both the Brahms baseline and RAPTEE so applications can swap protocols
//! without code changes — which is also how the benchmark harness runs
//! both sides of every comparison.

use crate::node::RapteeNode;
use raptee_brahms::BrahmsNode;
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// A local peer-sampling service endpoint.
///
/// # Examples
///
/// ```
/// use raptee::{PeerSamplingService, RapteeConfig, RapteeNode};
/// use raptee_net::NodeId;
///
/// let cfg = RapteeConfig::paper_defaults(8);
/// let boot: Vec<NodeId> = (1..=8).map(NodeId).collect();
/// let mut node = RapteeNode::new_untrusted(NodeId(0), cfg, &boot, 1);
/// let peer = node.next_peer().expect("bootstrap provides peers");
/// assert!(node.current_view().contains(&peer) || node.current_sample().contains(&peer));
/// ```
pub trait PeerSamplingService {
    /// This endpoint's own identifier.
    fn local_id(&self) -> NodeId;

    /// The current dynamic view (gossip neighbours).
    fn current_view(&self) -> Vec<NodeId>;

    /// The current sample list — the service's *uniform* output stream.
    fn current_sample(&self) -> Vec<NodeId>;

    /// Returns one peer approximating a uniform random member, drawn from
    /// the sample list (falling back to the view before the samplers have
    /// observed anything). `None` only when the node knows nobody at all.
    fn next_peer(&mut self) -> Option<NodeId>;
}

impl PeerSamplingService for BrahmsNode {
    fn local_id(&self) -> NodeId {
        self.id()
    }

    fn current_view(&self) -> Vec<NodeId> {
        self.view().id_vec()
    }

    fn current_sample(&self) -> Vec<NodeId> {
        self.sampler().samples()
    }

    fn next_peer(&mut self) -> Option<NodeId> {
        next_peer_impl(
            self.sampler().samples(),
            self.view().id_vec(),
            self.rng_mut(),
        )
    }
}

impl PeerSamplingService for RapteeNode {
    fn local_id(&self) -> NodeId {
        self.id()
    }

    fn current_view(&self) -> Vec<NodeId> {
        self.brahms().view().id_vec()
    }

    fn current_sample(&self) -> Vec<NodeId> {
        self.brahms().sampler().samples()
    }

    fn next_peer(&mut self) -> Option<NodeId> {
        let samples = self.brahms().sampler().samples();
        let view = self.brahms().view().id_vec();
        next_peer_impl(samples, view, self.brahms_mut().rng_mut())
    }
}

fn next_peer_impl(
    samples: Vec<NodeId>,
    view: Vec<NodeId>,
    rng: &mut Xoshiro256StarStar,
) -> Option<NodeId> {
    let pool = if samples.is_empty() { view } else { samples };
    if pool.is_empty() {
        None
    } else {
        Some(pool[rng.index(pool.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvictionPolicy, RapteeConfig};
    use raptee_brahms::BrahmsConfig;

    fn boot() -> Vec<NodeId> {
        (1..=8).map(NodeId).collect()
    }

    #[test]
    fn brahms_implements_service() {
        let mut n = BrahmsNode::new(NodeId(0), BrahmsConfig::paper_defaults(8, 8), &boot(), 1);
        assert_eq!(n.local_id(), NodeId(0));
        assert_eq!(n.current_view().len(), 8);
        assert_eq!(n.current_sample().len(), 8);
        assert!(n.next_peer().is_some());
    }

    #[test]
    fn raptee_implements_service() {
        let cfg = RapteeConfig {
            brahms: BrahmsConfig::paper_defaults(8, 8),
            eviction: EvictionPolicy::adaptive(),
        };
        let mut n = RapteeNode::new_untrusted(NodeId(0), cfg, &boot(), 1);
        assert_eq!(n.local_id(), NodeId(0));
        assert!(n.next_peer().is_some());
    }

    #[test]
    fn next_peer_none_when_isolated() {
        let mut n = BrahmsNode::new(NodeId(0), BrahmsConfig::paper_defaults(8, 8), &[], 1);
        assert!(n.next_peer().is_none());
    }

    #[test]
    fn service_is_object_safe() {
        let cfg = RapteeConfig {
            brahms: BrahmsConfig::paper_defaults(8, 8),
            eviction: EvictionPolicy::adaptive(),
        };
        let mut services: Vec<Box<dyn PeerSamplingService>> = vec![
            Box::new(BrahmsNode::new(
                NodeId(0),
                BrahmsConfig::paper_defaults(8, 8),
                &boot(),
                1,
            )),
            Box::new(RapteeNode::new_untrusted(NodeId(1), cfg, &boot(), 2)),
        ];
        for s in &mut services {
            assert!(s.next_peer().is_some());
        }
    }
}
