//! RAPTEE — TEE-hardened Byzantine-tolerant peer sampling.
//!
//! This crate is the paper's primary contribution: a peer-sampling
//! protocol that interoperates trusted (SGX-backed) communications with
//! [Brahms](raptee_brahms), hampering an adversary's ability to
//! over-represent its identifiers in the views of correct nodes.
//!
//! Every node runs a [`RapteeNode`], a modified Brahms node that executes
//! the mutual-authentication handshake before each pull request. The
//! small fraction of *trusted* nodes — whose code runs inside an attested
//! enclave and therefore cannot deviate (see [`provisioning`]) —
//! additionally:
//!
//! * perform **trusted communications** ([`RapteeNode::trusted_swap`])
//!   with the trusted peers they discover: a Jelasity-framework half-view
//!   swap whose received IDs also feed Brahms' pulled-ID stream; and
//! * apply **Byzantine eviction** ([`eviction::EvictionPolicy`]): at the
//!   end of each round they ignore a fraction of the IDs pulled from
//!   *untrusted* peers (fixed 0–100 %, or adaptive 20–80 % as a linear
//!   function of the round's share of trusted contacts), keeping their
//!   views and samplers markedly less poisoned — without ever behaving
//!   observably differently on the wire.
//!
//! # Quickstart
//!
//! ```
//! use raptee::{EvictionPolicy, RapteeConfig, RapteeNode};
//! use raptee_brahms::BrahmsConfig;
//! use raptee_crypto::SecretKey;
//! use raptee_net::NodeId;
//!
//! let config = RapteeConfig {
//!     brahms: BrahmsConfig::paper_defaults(20, 20),
//!     eviction: EvictionPolicy::adaptive(),
//! };
//! let bootstrap: Vec<NodeId> = (1..=20).map(NodeId).collect();
//! let group_key = SecretKey::from_seed(7);
//!
//! // A trusted node (group key from attestation) and an untrusted one.
//! let mut trusted = RapteeNode::new_trusted(NodeId(0), config.clone(), &bootstrap, 1, group_key);
//! let untrusted = RapteeNode::new_untrusted(NodeId(21), config, &bootstrap, 2);
//! assert!(trusted.is_trusted());
//! assert!(!untrusted.is_trusted());
//!
//! let plan = trusted.plan_round();
//! assert!(!plan.pull_targets.is_empty());
//! ```

pub mod eviction;
pub mod node;
pub mod provisioning;
pub mod service;
pub mod wire;

pub use eviction::EvictionPolicy;
pub use node::{RapteeConfig, RapteeNode};
pub use service::PeerSamplingService;
