//! Trusted-node provisioning: enclave load → remote attestation → group
//! key.
//!
//! Glue between the simulated TEE (`raptee-tee`) and [`crate::RapteeNode`]:
//! a node becomes *trusted* by loading the canonical RAPTEE trusted code
//! into an enclave on a certified platform, quoting it to the attestation
//! service, and receiving the group key in return. Untrusted nodes skip
//! all of this and generate a random key.
//!
//! The paper's trust model in one sentence: Intel certifies CPUs, the
//! attestation service verifies the enclave measurement, and only then is
//! the group secret released — so holding the group key *proves* a node
//! runs the unmodified trusted code.

use raptee_crypto::SecretKey;
use raptee_tee::enclave::{Enclave, Measurement};
use raptee_tee::{AttestationError, AttestationService, Certificate};

/// The canonical RAPTEE trusted-node code blob (stand-in for the enclave
/// binary whose MRENCLAVE the attestation service expects).
pub const TRUSTED_CODE: &[u8] = b"raptee-trusted-node-enclave-v1.0";

/// The expected measurement of [`TRUSTED_CODE`].
pub fn expected_measurement() -> Measurement {
    Measurement::of_code(TRUSTED_CODE)
}

/// Creates an attestation service that provisions the group key derived
/// from `group_seed` to genuine RAPTEE enclaves.
pub fn new_attestation_service(group_seed: u64) -> AttestationService {
    AttestationService::new(expected_measurement(), SecretKey::from_seed(group_seed))
}

/// Runs the full provisioning flow for `platform_id`: load the trusted
/// code, obtain a challenge, quote, attest, and install the key into the
/// enclave. Returns the provisioned enclave (from which
/// [`Enclave::group_key`] yields the key for [`crate::RapteeNode::new_trusted`]).
///
/// # Errors
///
/// Returns the [`AttestationError`] when the platform is not certified or
/// the quote fails verification.
pub fn provision_trusted_enclave(
    service: &mut AttestationService,
    platform_id: u64,
) -> Result<Enclave, AttestationError> {
    let mut enclave = Enclave::load(TRUSTED_CODE, platform_id);
    let nonce = service.challenge();
    let quote = AttestationService::quote(platform_id, &enclave, nonce);
    let key = service.attest(&quote)?;
    enclave.provision_group_key(key);
    Ok(enclave)
}

/// Convenience: provision and return just the group key.
///
/// # Errors
///
/// Same as [`provision_trusted_enclave`].
pub fn provision_trusted_key(
    service: &mut AttestationService,
    platform_id: u64,
) -> Result<SecretKey, AttestationError> {
    let enclave = provision_trusted_enclave(service, platform_id)?;
    Ok(enclave.group_key().expect("just provisioned").clone())
}

/// Certifies `platform_id` and runs the full provisioning flow on it in
/// one step — the simulation engine's population builder uses this for
/// every trusted node (RAPTEE *and* the BASALT+TEE hybrid share the
/// identical attestation path).
///
/// # Panics
///
/// Panics if attestation fails — impossible for a just-certified
/// platform running the genuine trusted code.
pub fn certify_and_provision(service: &mut AttestationService, platform_id: u64) -> SecretKey {
    service.certify_platform(platform_id);
    provision_trusted_key(service, platform_id)
        .expect("certified platform with genuine code attests")
}

/// Renews an expired (or expiring) attestation: the platform re-runs the
/// full challenge/quote/attest flow and receives a fresh time-bounded
/// [`Certificate`] valid from `now` for `ttl` rounds. The trusted-tier
/// degradation model calls this at each re-attestation event.
///
/// # Errors
///
/// Returns the [`AttestationError`] when the platform is uncertified or
/// revoked.
pub fn renew_attestation(
    service: &mut AttestationService,
    platform_id: u64,
    now: u64,
    ttl: u64,
) -> Result<Certificate, AttestationError> {
    let enclave = Enclave::load(TRUSTED_CODE, platform_id);
    let nonce = service.challenge();
    let quote = AttestationService::quote(platform_id, &enclave, nonce);
    let (_, cert) = service.attest_certified(&quote, now, ttl)?;
    Ok(cert)
}

/// Whether a chained view commitment taken at `commit_round` is
/// *admissible* under `cert`: commitments ride the attested exchange
/// path and expire with the attestation certificate, so an opening
/// demanded for a round outside the certificate window proves nothing —
/// the audit layer must downgrade such a node to `Suspected` at worst,
/// never convict it.
pub fn commitment_admissible(cert: &Certificate, commit_round: u64) -> bool {
    cert.valid_at(commit_round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvictionPolicy, RapteeConfig, RapteeNode};
    use raptee_crypto::auth::AuthOutcome;
    use raptee_net::NodeId;

    #[test]
    fn provisioned_nodes_mutually_authenticate() {
        let mut service = new_attestation_service(99);
        service.certify_platform(1);
        service.certify_platform(2);
        let k1 = provision_trusted_key(&mut service, 1).unwrap();
        let k2 = provision_trusted_key(&mut service, 2).unwrap();
        assert_eq!(k1, k2, "all attested enclaves share the group key");

        let cfg = RapteeConfig {
            brahms: raptee_brahms::BrahmsConfig::paper_defaults(8, 8),
            eviction: EvictionPolicy::adaptive(),
        };
        let boot: Vec<NodeId> = (10..18).map(NodeId).collect();
        let mut a = RapteeNode::new_trusted(NodeId(1), cfg.clone(), &boot, 1, k1);
        let mut b = RapteeNode::new_trusted(NodeId(2), cfg, &boot, 2, k2);
        let (oa, ob) = RapteeNode::run_handshake(&mut a, &mut b);
        assert_eq!(oa, AuthOutcome::Trusted);
        assert_eq!(ob, AuthOutcome::Trusted);
    }

    #[test]
    fn uncertified_platform_cannot_provision() {
        let mut service = new_attestation_service(99);
        assert_eq!(
            provision_trusted_key(&mut service, 7).unwrap_err(),
            AttestationError::UnknownPlatform
        );
    }

    #[test]
    fn adversary_with_modified_code_cannot_join_trusted_set() {
        let mut service = new_attestation_service(99);
        service.certify_platform(666);
        // The adversary tweaks the enclave code — measurement changes.
        let evil = Enclave::load(b"raptee-trusted-node-enclave-v1.0-EVIL", 666);
        let nonce = service.challenge();
        let quote = AttestationService::quote(666, &evil, nonce);
        assert_eq!(
            service.attest(&quote).unwrap_err(),
            AttestationError::WrongMeasurement
        );
    }

    #[test]
    fn renewal_issues_fresh_window_and_respects_revocation() {
        let mut service = new_attestation_service(99);
        service.certify_platform(4);
        let cert = renew_attestation(&mut service, 4, 30, 20).unwrap();
        assert!(cert.valid_at(30) && cert.valid_at(49) && !cert.valid_at(50));
        service.revoke_platform(4);
        assert_eq!(
            renew_attestation(&mut service, 4, 50, 20).unwrap_err(),
            AttestationError::RevokedPlatform
        );
    }

    #[test]
    fn commitment_admissibility_tracks_certificate_window() {
        let mut service = new_attestation_service(99);
        service.certify_platform(5);
        let cert = renew_attestation(&mut service, 5, 10, 20).unwrap();
        assert!(commitment_admissible(&cert, 10));
        assert!(commitment_admissible(&cert, 29));
        assert!(!commitment_admissible(&cert, 30));
    }

    #[test]
    fn sealed_key_survives_restart_on_same_platform() {
        // Trusted nodes can persist the group key across restarts via
        // sealing — the anti-churn story for trusted nodes.
        let mut service = new_attestation_service(99);
        service.certify_platform(3);
        let mut enclave = provision_trusted_enclave(&mut service, 3).unwrap();
        let key = enclave.group_key().unwrap().clone();
        enclave.seal("group-key", key.as_bytes());
        let blob = enclave.export_sealed("group-key").unwrap().to_vec();
        // "Restart": a fresh enclave instance of the same code and platform.
        let fresh = Enclave::load(TRUSTED_CODE, 3);
        let recovered = fresh.unseal_blob(&blob).unwrap();
        assert_eq!(recovered, key.as_bytes());
    }
}
