//! RAPTEE mutual authentication (paper Section IV-A).
//!
//! Every node runs this challenge–response protocol before issuing a pull
//! request, so that two *trusted* nodes can privately discover each other
//! while revealing nothing to anyone else:
//!
//! 1. `A → B`: challenge `r_A` (fresh pseudo-random nonce).
//! 2. `B → A`: `(r_B, [H(r_A · r_B)]_{K_B})` — `B` hashes the nonce
//!    concatenation and keys it with its own secret key `K_B`.
//! 3. `A` recomputes the keyed value under `K_A`; a match proves
//!    `K_A = K_B` (both hold the attested group key), so `A` marks `B`
//!    trusted. `A` then replies `[H(r_B · r_A)]_{K_A}`.
//! 4. `B` verifies symmetrically and marks `A` trusted on a match.
//!
//! The paper's `[·]_K` (symmetric encryption of a digest) is modelled as
//! `HMAC(K, ·)`: only a holder of the same key can produce or check the
//! value, which is the exact property the protocol relies on. Untrusted
//! nodes run the very same code with their own random keys — their
//! exchanges simply end in [`AuthOutcome::Untrusted`], and because the
//! message sizes and flow are identical in both cases, an eavesdropper
//! learns nothing (Section III-B's indistinguishability argument).
//!
//! The confirm message is *always* sent, even when the initiator has
//! already concluded `Untrusted`; otherwise message flow would differ
//! between trusted and untrusted handshakes and leak exactly the bit the
//! protocol is designed to hide.

use crate::hmac::hmac_sha256;
use crate::key::{constant_time_eq, SecretKey};
use crate::sha256::{Digest, Sha256};

/// Nonce length for authentication challenges (128-bit).
pub const NONCE_LEN: usize = 16;

/// A fresh challenge nonce `r_A` sent by the initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthChallenge {
    /// The initiator's nonce `r_A`.
    pub nonce: [u8; NONCE_LEN],
}

/// The responder's message `(r_B, [H(r_A · r_B)]_{K_B})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthResponse {
    /// The responder's nonce `r_B`.
    pub nonce: [u8; NONCE_LEN],
    /// `HMAC(K_B, H(r_A || r_B))`.
    pub tag: Digest,
}

/// The initiator's final message `[H(r_B · r_A)]_{K_A}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthConfirm {
    /// `HMAC(K_A, H(r_B || r_A))`.
    pub tag: Digest,
}

/// Result of an authentication exchange, from one party's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthOutcome {
    /// The remote party holds the same secret key (for trusted nodes: it is
    /// an attested enclave holding the group key).
    Trusted,
    /// The remote party holds a different key; treat it as a regular,
    /// untrusted Brahms peer.
    Untrusted,
}

impl AuthOutcome {
    /// Convenience predicate.
    pub fn is_trusted(self) -> bool {
        matches!(self, AuthOutcome::Trusted)
    }
}

/// Pending state held by the initiator between challenge and response.
#[derive(Debug, Clone, Copy)]
pub struct InitiatorPending {
    nonce: [u8; NONCE_LEN],
}

/// Pending state held by the responder between response and confirm.
#[derive(Debug, Clone, Copy)]
pub struct ResponderPending {
    initiator_nonce: [u8; NONCE_LEN],
    own_nonce: [u8; NONCE_LEN],
}

/// Runs the RAPTEE mutual-authentication protocol for one node.
///
/// The authenticator is deliberately transport-agnostic: the caller moves
/// the three messages between the two parties (in the simulation this is
/// `raptee-net`; in a deployment it would be the TCP channel).
///
/// # Examples
///
/// ```
/// use raptee_crypto::{Authenticator, SecretKey, AuthOutcome};
///
/// let group = SecretKey::from_seed(42);
/// let alice = Authenticator::new(group.clone());
/// let bob = Authenticator::new(group);
///
/// let (challenge, a_pending) = alice.initiate([1u8; 16]);
/// let (response, b_pending) = bob.respond(&challenge, [2u8; 16]);
/// let (a_outcome, confirm) = alice.verify_response(&a_pending, &response);
/// let b_outcome = bob.verify_confirm(&b_pending, &confirm);
/// assert_eq!(a_outcome, AuthOutcome::Trusted);
/// assert_eq!(b_outcome, AuthOutcome::Trusted);
/// ```
#[derive(Debug, Clone)]
pub struct Authenticator {
    key: SecretKey,
}

impl Authenticator {
    /// Creates an authenticator for a node holding `key`.
    pub fn new(key: SecretKey) -> Self {
        Self { key }
    }

    /// Step 1: produce a challenge from a fresh nonce. The nonce must come
    /// from the caller's RNG so that the simulation stays deterministic.
    pub fn initiate(&self, nonce: [u8; NONCE_LEN]) -> (AuthChallenge, InitiatorPending) {
        (AuthChallenge { nonce }, InitiatorPending { nonce })
    }

    /// Step 2: answer a challenge with our own nonce and keyed digest.
    pub fn respond(
        &self,
        challenge: &AuthChallenge,
        own_nonce: [u8; NONCE_LEN],
    ) -> (AuthResponse, ResponderPending) {
        let tag = self.keyed_digest(&challenge.nonce, &own_nonce);
        (
            AuthResponse {
                nonce: own_nonce,
                tag,
            },
            ResponderPending {
                initiator_nonce: challenge.nonce,
                own_nonce,
            },
        )
    }

    /// Step 3 (initiator): check the response and produce the confirm
    /// message. The confirm is returned in *all* cases — sending it only on
    /// success would make trusted handshakes observable on the wire.
    pub fn verify_response(
        &self,
        pending: &InitiatorPending,
        response: &AuthResponse,
    ) -> (AuthOutcome, AuthConfirm) {
        let expected = self.keyed_digest(&pending.nonce, &response.nonce);
        let outcome = if constant_time_eq(&expected, &response.tag) {
            AuthOutcome::Trusted
        } else {
            AuthOutcome::Untrusted
        };
        let confirm = AuthConfirm {
            tag: self.keyed_digest(&response.nonce, &pending.nonce),
        };
        (outcome, confirm)
    }

    /// Step 4 (responder): check the confirm message.
    pub fn verify_confirm(&self, pending: &ResponderPending, confirm: &AuthConfirm) -> AuthOutcome {
        let expected = self.keyed_digest(&pending.own_nonce, &pending.initiator_nonce);
        if constant_time_eq(&expected, &confirm.tag) {
            AuthOutcome::Trusted
        } else {
            AuthOutcome::Untrusted
        }
    }

    /// `HMAC(K, H(first || second))` — the paper's `[H(first · second)]_K`.
    fn keyed_digest(&self, first: &[u8; NONCE_LEN], second: &[u8; NONCE_LEN]) -> Digest {
        let mut h = Sha256::new();
        h.update(first);
        h.update(second);
        let inner = h.finalize();
        hmac_sha256(self.key.as_bytes(), &inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_handshake(a_key: SecretKey, b_key: SecretKey) -> (AuthOutcome, AuthOutcome) {
        let alice = Authenticator::new(a_key);
        let bob = Authenticator::new(b_key);
        let (ch, ap) = alice.initiate([0xA1; NONCE_LEN]);
        let (resp, bp) = bob.respond(&ch, [0xB2; NONCE_LEN]);
        let (a_out, confirm) = alice.verify_response(&ap, &resp);
        let b_out = bob.verify_confirm(&bp, &confirm);
        (a_out, b_out)
    }

    #[test]
    fn same_key_mutually_trusted() {
        let k = SecretKey::from_seed(7);
        let (a, b) = run_handshake(k.clone(), k);
        assert!(a.is_trusted());
        assert!(b.is_trusted());
    }

    #[test]
    fn different_keys_mutually_untrusted() {
        let (a, b) = run_handshake(SecretKey::from_seed(1), SecretKey::from_seed(2));
        assert_eq!(a, AuthOutcome::Untrusted);
        assert_eq!(b, AuthOutcome::Untrusted);
    }

    #[test]
    fn confirm_always_produced() {
        // Even with mismatched keys the initiator still emits a confirm
        // message, keeping the wire pattern constant.
        let alice = Authenticator::new(SecretKey::from_seed(1));
        let bob = Authenticator::new(SecretKey::from_seed(2));
        let (ch, ap) = alice.initiate([1; NONCE_LEN]);
        let (resp, _) = bob.respond(&ch, [2; NONCE_LEN]);
        let (outcome, confirm) = alice.verify_response(&ap, &resp);
        assert_eq!(outcome, AuthOutcome::Untrusted);
        assert_ne!(confirm.tag, [0u8; 32], "confirm tag is a real digest");
    }

    #[test]
    fn replayed_response_fails_under_new_nonce() {
        // An adversary replaying an old trusted response against a fresh
        // challenge must fail: the tag binds both nonces.
        let k = SecretKey::from_seed(7);
        let alice = Authenticator::new(k.clone());
        let bob = Authenticator::new(k);
        let (ch1, _ap1) = alice.initiate([1; NONCE_LEN]);
        let (old_resp, _) = bob.respond(&ch1, [9; NONCE_LEN]);
        // New session with a different challenge nonce.
        let (_ch2, ap2) = alice.initiate([2; NONCE_LEN]);
        let (outcome, _) = alice.verify_response(&ap2, &old_resp);
        assert_eq!(outcome, AuthOutcome::Untrusted);
    }

    #[test]
    fn tampered_tag_detected() {
        let k = SecretKey::from_seed(7);
        let alice = Authenticator::new(k.clone());
        let bob = Authenticator::new(k);
        let (ch, ap) = alice.initiate([1; NONCE_LEN]);
        let (mut resp, _) = bob.respond(&ch, [2; NONCE_LEN]);
        resp.tag[0] ^= 0xFF;
        let (outcome, _) = alice.verify_response(&ap, &resp);
        assert_eq!(outcome, AuthOutcome::Untrusted);
    }

    #[test]
    fn forged_confirm_detected() {
        let k = SecretKey::from_seed(7);
        let alice = Authenticator::new(k.clone());
        let bob = Authenticator::new(k);
        let (ch, _ap) = alice.initiate([1; NONCE_LEN]);
        let (_resp, bp) = bob.respond(&ch, [2; NONCE_LEN]);
        let forged = AuthConfirm { tag: [0xEE; 32] };
        assert_eq!(bob.verify_confirm(&bp, &forged), AuthOutcome::Untrusted);
    }

    #[test]
    fn direction_matters_in_digest() {
        // H(rA||rB) keyed must differ from H(rB||rA) keyed; otherwise a
        // reflection attack could bounce the response back as a confirm.
        let k = SecretKey::from_seed(7);
        let auth = Authenticator::new(k);
        let d1 = auth.keyed_digest(&[1; NONCE_LEN], &[2; NONCE_LEN]);
        let d2 = auth.keyed_digest(&[2; NONCE_LEN], &[1; NONCE_LEN]);
        assert_ne!(d1, d2);
    }

    #[test]
    fn message_sizes_do_not_depend_on_keys() {
        // Indistinguishability on the wire: trusted and untrusted
        // handshakes produce byte-identical message *shapes*.
        let t = Authenticator::new(SecretKey::from_seed(1));
        let u = Authenticator::new(SecretKey::from_seed(2));
        let (cht, _) = t.initiate([1; NONCE_LEN]);
        let (chu, _) = u.initiate([1; NONCE_LEN]);
        assert_eq!(std::mem::size_of_val(&cht), std::mem::size_of_val(&chu));
        let (rt, _) = t.respond(&cht, [2; NONCE_LEN]);
        let (ru, _) = u.respond(&chu, [2; NONCE_LEN]);
        assert_eq!(std::mem::size_of_val(&rt), std::mem::size_of_val(&ru));
    }
}
