//! ChaCha20 stream cipher (RFC 8439).
//!
//! Stands in for the AES-CTR symmetric encryption of the paper: all
//! node-to-node traffic in RAPTEE is symmetrically encrypted to defeat an
//! eavesdropping adversary. Both AES-CTR and ChaCha20 are length-preserving
//! stream ciphers, so the substitution changes nothing about message sizes
//! or the protocol state machine.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for (`key`, `counter`, `nonce`).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR keystream; the operation is an
/// involution). `initial_counter` is normally `1` per RFC 8439 when a
/// separate block 0 is reserved for a MAC key, or `0` otherwise.
pub fn xor_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience wrapper returning a new ciphertext vector.
///
/// # Examples
///
/// ```
/// use raptee_crypto::chacha20::{encrypt, KEY_LEN, NONCE_LEN};
/// let key = [7u8; KEY_LEN];
/// let nonce = [1u8; NONCE_LEN];
/// let ct = encrypt(&key, &nonce, b"attack at dawn");
/// let pt = encrypt(&key, &nonce, &ct); // XOR cipher: same op decrypts
/// assert_eq!(pt, b"attack at dawn");
/// ```
pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_in_place(key, nonce, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        let expected_head = [0x10u8, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&out[..8], &expected_head);
        // Final state word per RFC 8439 §2.3.2 is 0x4e3c50a2, serialized LE.
        let expected_tail = [0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&out[60..], &expected_tail);
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        assert_eq!(
            &ct[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        assert_eq!(ct.len(), plaintext.len());
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0x42u8; KEY_LEN];
        let nonce = [0x24u8; NONCE_LEN];
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&key, &nonce, &data);
            let pt = encrypt(&key, &nonce, &ct);
            assert_eq!(pt, data, "len {len}");
            if len > 0 {
                assert_ne!(ct, data, "ciphertext must differ (len {len})");
            }
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [1u8; KEY_LEN];
        let a = encrypt(&key, &[0u8; NONCE_LEN], b"same message");
        let b = encrypt(&key, &[1u8; NONCE_LEN], b"same message");
        assert_ne!(a, b);
    }

    #[test]
    fn different_key_different_stream() {
        let nonce = [0u8; NONCE_LEN];
        let a = encrypt(&[1u8; KEY_LEN], &nonce, b"same message");
        let b = encrypt(&[2u8; KEY_LEN], &nonce, b"same message");
        assert_ne!(a, b);
    }
}
