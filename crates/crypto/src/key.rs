//! Secret-key newtype with constant-time comparison.
//!
//! In RAPTEE every node holds exactly one symmetric secret key: untrusted
//! nodes generate a random one at initialisation; trusted nodes are
//! provisioned the *group key* inside the enclave during remote
//! attestation. Two nodes are mutually "trusted" exactly when their keys
//! are equal — which the authentication protocol of [`crate::auth`] checks
//! without ever transmitting the key.

use crate::chacha20;
use crate::hmac::derive_key;

/// A 256-bit symmetric secret key.
///
/// Equality is constant-time; `Debug` prints a redacted placeholder so keys
/// never leak into logs.
#[derive(Clone)]
pub struct SecretKey {
    bytes: [u8; 32],
}

impl SecretKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self { bytes }
    }

    /// Derives a key deterministically from a 64-bit seed (simulation
    /// convenience; expands via the SHA-256-based PRF so distinct seeds
    /// give independent keys).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            bytes: derive_key(&seed.to_le_bytes(), "raptee-node-key", &[]),
        }
    }

    /// Raw key bytes (needed by the cipher layer).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// Constant-time equality check.
    pub fn ct_eq(&self, other: &SecretKey) -> bool {
        constant_time_eq(&self.bytes, &other.bytes)
    }

    /// Derives a subkey bound to `label`/`context`; used for per-channel
    /// session keys.
    pub fn derive(&self, label: &str, context: &[u8]) -> SecretKey {
        SecretKey {
            bytes: derive_key(&self.bytes, label, context),
        }
    }

    /// Encrypts `data` under this key with the given 96-bit nonce.
    pub fn encrypt(&self, nonce: &[u8; chacha20::NONCE_LEN], data: &[u8]) -> Vec<u8> {
        chacha20::encrypt(&self.bytes, nonce, data)
    }

    /// Decrypts `data`; identical to [`SecretKey::encrypt`] because the
    /// cipher is an XOR stream.
    pub fn decrypt(&self, nonce: &[u8; chacha20::NONCE_LEN], data: &[u8]) -> Vec<u8> {
        self.encrypt(nonce, data)
    }
}

impl PartialEq for SecretKey {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}
impl Eq for SecretKey {}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// Compares two equal-length byte strings in constant time (with respect to
/// content; the length comparison is public information).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_keys_deterministic_and_distinct() {
        let a = SecretKey::from_seed(1);
        let b = SecretKey::from_seed(1);
        let c = SecretKey::from_seed(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_changes_key() {
        let k = SecretKey::from_seed(9);
        let d1 = k.derive("session", b"peer-1");
        let d2 = k.derive("session", b"peer-2");
        assert_ne!(k, d1);
        assert_ne!(d1, d2);
    }

    #[test]
    fn encrypt_roundtrip() {
        let k = SecretKey::from_seed(5);
        let nonce = [3u8; 12];
        let ct = k.encrypt(&nonce, b"view contents");
        assert_ne!(ct, b"view contents");
        assert_eq!(k.decrypt(&nonce, &ct), b"view contents");
    }

    #[test]
    fn wrong_key_garbles() {
        let k1 = SecretKey::from_seed(5);
        let k2 = SecretKey::from_seed(6);
        let nonce = [3u8; 12];
        let ct = k1.encrypt(&nonce, b"view contents");
        assert_ne!(k2.decrypt(&nonce, &ct), b"view contents");
    }

    #[test]
    fn debug_is_redacted() {
        let k = SecretKey::from_seed(5);
        assert_eq!(format!("{k:?}"), "SecretKey(<redacted>)");
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}
