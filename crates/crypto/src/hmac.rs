//! HMAC-SHA-256 (RFC 2104), plus a small HKDF-style key-derivation helper.
//!
//! In the paper, the response digest of the mutual-authentication protocol
//! is "encrypted with [the node's] own secret key". A keyed MAC achieves
//! exactly the property the protocol needs — only a holder of the same key
//! can produce or verify the value — so we model `[H(r_A·r_B)]_{K}` as
//! `HMAC(K, H(r_A·r_B))`. HMAC is also used to derive per-session channel
//! keys from the group key in `raptee-net`.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use raptee_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = Sha256::digest(key);
        key_block[..DIGEST_LEN].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Derives a 32-byte subkey from `key` bound to a domain-separation `label`
/// and `context` (single-block HKDF-expand style: `HMAC(key, label || 0x00
/// || context || 0x01)`).
pub fn derive_key(key: &[u8], label: &str, context: &[u8]) -> Digest {
    let mut msg = Vec::with_capacity(label.len() + 2 + context.len());
    msg.extend_from_slice(label.as_bytes());
    msg.push(0);
    msg.extend_from_slice(context);
    msg.push(1);
    hmac_sha256(key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn derive_key_domain_separation() {
        let base = b"group key";
        let a = derive_key(base, "channel", b"node-1");
        let b = derive_key(base, "channel", b"node-2");
        let c = derive_key(base, "auth", b"node-1");
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, derive_key(base, "channel", b"node-1"));
    }
}
