//! Cryptographic substrate for the RAPTEE reproduction.
//!
//! The paper's implementation uses Intel's SGX port of OpenSSL (RSA +
//! AES-CTR). No off-the-shelf crypto crates are available offline for this
//! reproduction, so this crate implements the needed primitives from
//! scratch and validates them against official test vectors:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (the `H(·)` of the paper's mutual
//!   authentication protocol).
//! * [`hmac`] — RFC 2104 HMAC-SHA-256, used for keyed "encryption" of the
//!   authentication digests and as the PRF for session-key derivation.
//! * [`chacha20`] — RFC 8439 ChaCha20, standing in for AES-CTR as the
//!   symmetric stream cipher protecting node-to-node channels (both are
//!   stream ciphers; message layouts are identical).
//! * [`key`] — secret-key newtypes with constant-time comparison.
//! * [`auth`] — the RAPTEE mutual-authentication state machine
//!   (Section IV-A of the paper): challenge, response
//!   `(r_B, [H(r_A·r_B)]_{K_B})`, and confirmation `[H(r_B·r_A)]_{K_A}`.
//!
//! Security note: this code is written for protocol simulation and study,
//! not production use. It is, however, functionally correct (test-vectored)
//! so the simulated adversary genuinely cannot forge authentications
//! without the group key.

pub mod auth;
pub mod chacha20;
pub mod hmac;
pub mod key;
pub mod sha256;

pub use auth::{AuthChallenge, AuthConfirm, AuthOutcome, AuthResponse, Authenticator};
pub use key::SecretKey;
pub use sha256::Sha256;
