//! Offline stand-in for the crates.io `rayon` crate.
//!
//! The build environment for this reproduction has no registry access,
//! so the workspace vendors the *exact* API surface it uses —
//! `into_par_iter()` / `par_iter()` followed by `map(...).collect()` —
//! backed by `std::thread::scope`. Work is chunked across
//! `available_parallelism()` threads and results keep input order, so
//! callers observe the same semantics as rayon for these pipelines
//! (deterministic output order, one closure call per item).
//!
//! This is not a work-stealing scheduler: each thread gets one
//! contiguous chunk. For the simulation sweeps in `raptee-sim` — many
//! similarly-sized, CPU-bound repetitions — that is within noise of
//! real rayon, and it keeps the workspace self-contained.

use std::num::NonZeroUsize;
use std::ops::Range;

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// An eager "parallel iterator": the items are materialised up front and
/// each adaptor applies immediately.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Types convertible into a [`ParIter`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator over its items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Types whose references yield a [`ParIter`] of `&T` (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;
    /// Borrows `self` as a parallel iterator over `&T`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_par_iter!(usize, u32, u64, i32, i64);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item across a thread pool, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_apply(self.items, &f),
        }
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

thread_local! {
    /// Set while a `par_apply` worker runs on this thread. Real rayon
    /// shares one global pool, so nested parallelism never
    /// oversubscribes; this shim gets the same property by running
    /// nested maps serially on the already-parallel worker.
    static IN_PAR_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Chunked fork-join map over `items`, preserving input order.
fn par_apply<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if threads <= 1 || IN_PAR_REGION.with(|flag| flag.get()) {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    IN_PAR_REGION.with(|flag| flag.set(true));
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = data.par_iter().map(|&x| x + 0.5).collect();
        assert_eq!(out, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn nested_parallelism_runs_inner_serially() {
        // Outer map is parallel; inner maps must not spawn another
        // thread layer (cores² threads). Observable contract: results
        // are still correct and ordered.
        let out: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                (0..4usize)
                    .into_par_iter()
                    .map(move |j| i * 10 + j)
                    .collect()
            })
            .collect();
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &[i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
