//! Offline stand-in for the crates.io `rayon` crate.
//!
//! The build environment for this reproduction has no registry access,
//! so the workspace vendors the *exact* API surface it uses —
//! `into_par_iter()` / `par_iter()` followed by `map(...).collect()` —
//! backed by a **persistent worker pool** (like real rayon's global
//! pool). Helper threads are spawned lazily up to the largest worker
//! count ever requested and then parked on a condvar between jobs, so
//! the engine's per-phase parallel calls (several per simulated round)
//! pay a wakeup, not a `thread::spawn`, each time. The submitting
//! thread always participates as worker 0. Results keep input order, so
//! callers observe the same semantics as rayon for these pipelines
//! (deterministic output order, one closure call per item).
//!
//! Scheduling is **work-stealing**: every worker owns a deque seeded
//! with a contiguous chunk of the items; it pops work from the front of
//! its own deque and, when empty, steals the back half of a victim's.
//! Heterogeneous workloads (a `sweep_grid` mixing N=150 and N=10,000
//! scenarios) therefore no longer serialize on the thread that drew the
//! most expensive chunk, which is what the previous even-chunk scheduler
//! did. Results are written back by item index, so the output is
//! identical for every thread count — including 1.
//!
//! Thread count resolution, in priority order:
//! 1. a scoped [`with_num_threads`] override (used by the determinism
//!    test-suite to pin 1-vs-N schedules);
//! 2. the `RAYON_NUM_THREADS` environment variable (same contract as
//!    real rayon);
//! 3. `std::thread::available_parallelism()`.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// An eager "parallel iterator": the items are materialised up front and
/// each adaptor applies immediately.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Types convertible into a [`ParIter`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator over its items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Types whose references yield a [`ParIter`] of `&T` (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;
    /// Borrows `self` as a parallel iterator over `&T`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_par_iter!(usize, u32, u64, i32, i64);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item across a work-stealing thread pool,
    /// preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_apply(self.items, &f),
        }
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

thread_local! {
    /// Set while a `par_apply` worker runs on this thread. Real rayon
    /// shares one global pool, so nested parallelism never
    /// oversubscribes; this shim gets the same property by running
    /// nested maps serially on the already-parallel worker.
    static IN_PAR_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Scoped thread-count override installed by [`with_num_threads`].
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Runs `f` with the shim's thread count pinned to `n` (≥ 1) on this
/// thread, restoring the previous setting afterwards. Scoped and
/// thread-local — unlike an environment variable it cannot race with
/// concurrently running tests. Used by the determinism suite to prove
/// schedules with 1 and N workers produce identical results.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let result = f();
    THREAD_OVERRIDE.with(|c| c.set(previous));
    result
}

/// The worker count the shim would use right now (rayon-compatible
/// name): scoped override, then `RAYON_NUM_THREADS`, then the machine's
/// available parallelism. Inside a parallel region this still reports
/// the configured count, but nested parallel calls run serially.
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// Resolves the worker count: scoped override, then `RAYON_NUM_THREADS`,
/// then the machine's available parallelism.
fn configured_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|c| c.get()) {
        return n;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

mod pool {
    //! The persistent worker pool behind [`par_apply`] and
    //! [`par_for_each_scratch`](super::par_for_each_scratch).
    //!
    //! One global pool per process, mirroring real rayon: helper
    //! threads are spawned lazily the first time a job needs them and
    //! then live forever, parked on a condvar. Jobs are serialized by a
    //! submission lock (one fork-join region at a time — concurrent
    //! top-level callers queue, they never oversubscribe), and the
    //! submitting thread runs the job as worker 0 so a pool of `k`
    //! helpers serves `k + 1`-way parallelism.

    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// A lifetime-erased job. The erasure is sound because [`run`]
    /// never returns before every participating helper has finished the
    /// job (the `running` latch), so the borrows inside the closure
    /// outlive every use.
    type Job = &'static (dyn Fn(usize) + Sync);

    #[derive(Default)]
    struct State {
        /// Monotonic job id; bumped on every submission. A helper keeps
        /// the last generation it acted on, so condvar wakeups are
        /// idempotent: each helper runs each job at most once.
        generation: u64,
        /// The current job plus the helper count that must run it.
        job: Option<(Job, usize)>,
        /// Participating helpers still inside the current job.
        running: usize,
        /// Helper threads spawned so far (their ordinals are 1..=spawned).
        spawned: usize,
        /// A helper panicked inside the current job.
        panicked: bool,
    }

    struct Pool {
        state: Mutex<State>,
        /// Wakes helpers when a job is published.
        work: Condvar,
        /// Wakes the submitter when the last helper finishes.
        done: Condvar,
        /// Serializes whole jobs.
        submit: Mutex<()>,
    }

    /// Poison-tolerant lock: jobs are wrapped in `catch_unwind` and the
    /// submitter re-raises only after restoring a consistent state, so a
    /// poisoned mutex carries no broken invariants — recover the guard.
    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            submit: Mutex::new(()),
        })
    }

    /// Restores the caller's `IN_PAR_REGION` flag on drop, so a
    /// panicking job cannot leave the submitting thread marked as
    /// inside a parallel region.
    struct RegionGuard(bool);

    impl Drop for RegionGuard {
        fn drop(&mut self) {
            super::IN_PAR_REGION.with(|flag| flag.set(self.0));
        }
    }

    /// The body of one persistent helper thread.
    fn helper(ordinal: usize) {
        // Helpers only ever execute inside a job, so the nested-
        // parallelism flag is permanently set for them.
        super::IN_PAR_REGION.with(|flag| flag.set(true));
        let p = pool();
        let mut seen = 0u64;
        loop {
            let job = {
                let mut st = lock(&p.state);
                loop {
                    match st.job {
                        Some((job, helpers)) if st.generation > seen => {
                            seen = st.generation;
                            break (ordinal <= helpers).then_some(job);
                        }
                        _ => {
                            st = p
                                .work
                                .wait(st)
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                        }
                    }
                }
            };
            let Some(job) = job else { continue };
            let ok = catch_unwind(AssertUnwindSafe(|| job(ordinal))).is_ok();
            let mut st = lock(&p.state);
            if !ok {
                st.panicked = true;
            }
            st.running -= 1;
            if st.running == 0 {
                p.done.notify_all();
            }
        }
    }

    /// Runs `job(w)` once for every worker `w` in `0..=helpers`: the
    /// caller executes ordinal 0 itself, persistent helpers execute
    /// 1..=helpers concurrently. Returns only after every participant
    /// has finished; a panic on any worker is re-raised here (the
    /// helpers themselves survive and keep serving later jobs).
    pub(super) fn run(job: &(dyn Fn(usize) + Sync), helpers: usize) {
        if helpers == 0 {
            let _guard = RegionGuard(super::IN_PAR_REGION.with(|flag| flag.replace(true)));
            job(0);
            return;
        }
        let p = pool();
        let _submit = lock(&p.submit);
        // SAFETY: only the lifetime is erased; the completion latch
        // below keeps the borrow alive past every helper's last use.
        let job: Job = unsafe { std::mem::transmute(job) };
        {
            let mut st = lock(&p.state);
            while st.spawned < helpers {
                let ordinal = st.spawned + 1;
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{ordinal}"))
                    .spawn(move || helper(ordinal))
                    .expect("spawn rayon-shim pool helper");
                st.spawned += 1;
            }
            st.job = Some((job, helpers));
            st.generation += 1;
            st.running = helpers;
            st.panicked = false;
            p.work.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| {
            let _guard = RegionGuard(super::IN_PAR_REGION.with(|flag| flag.replace(true)));
            job(0);
        }));
        let mut st = lock(&p.state);
        while st.running > 0 {
            st = p
                .done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.job = None;
        let helper_panicked = st.panicked;
        drop(st);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        assert!(!helper_panicked, "rayon-shim pool worker panicked");
    }

    /// How many persistent helper threads exist (diagnostics; grows to
    /// the largest helper count any job has requested, never shrinks).
    pub fn spawned_workers() -> usize {
        lock(&pool().state).spawned
    }
}

pub use pool::spawned_workers as pool_spawned_workers;

/// Work-stealing fork-join map over `items`, preserving input order.
fn par_apply<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = configured_threads().min(n);
    if threads <= 1 || IN_PAR_REGION.with(|flag| flag.get()) {
        return items.into_iter().map(f).collect();
    }

    // Seed each worker's deque with a contiguous chunk of indexed items.
    let chunk_len = n.div_ceil(threads);
    let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(threads);
    {
        let mut items = items.into_iter().enumerate();
        for _ in 0..threads {
            deques.push(Mutex::new(items.by_ref().take(chunk_len).collect()));
        }
    }
    let deques = &deques;

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let slot_base = SharedMutPtr(slots.as_mut_ptr(), PhantomData);
    let slot_base = &slot_base;
    pool::run(
        &move |w: usize| {
            loop {
                // Drain the front of the local deque.
                let task = deques[w].lock().expect("deque poisoned").pop_front();
                if let Some((i, item)) = task {
                    let r = f(item);
                    // SAFETY: index `i` lives in exactly one deque at a
                    // time and is claimed by exactly one worker, so this
                    // slot write is exclusive; the pool's completion
                    // latch orders it before `slots` is read below.
                    unsafe { *slot_base.0.add(i) = Some(r) };
                    continue;
                }
                // Empty: steal the back half of the first
                // non-empty victim (back-stealing keeps the
                // victim's cache-warm front intact).
                let mut loot: Option<VecDeque<(usize, T)>> = None;
                for v in 1..threads {
                    let victim = (w + v) % threads;
                    let mut dq = deques[victim].lock().expect("deque poisoned");
                    let len = dq.len();
                    if len > 0 {
                        loot = Some(dq.split_off(len - len.div_ceil(2)));
                        break;
                    }
                }
                match loot {
                    Some(stolen) => {
                        deques[w].lock().expect("deque poisoned").extend(stolen);
                    }
                    None => break, // every deque drained
                }
            }
        },
        threads - 1,
    );
    slots
        .into_iter()
        .map(|r| r.expect("every item computed exactly once"))
        .collect()
}

/// A `*mut T` that may cross thread boundaries. Soundness rests on the
/// claiming discipline of the call sites ([`par_apply`],
/// [`par_for_each_scratch`]): every index is handed out exactly once —
/// by an atomic cursor, a deque pop, or the pool's unique worker
/// ordinals — so no two workers ever hold a `&mut` to the same element.
struct SharedMutPtr<T>(*mut T, PhantomData<T>);

unsafe impl<T: Send> Send for SharedMutPtr<T> {}
unsafe impl<T: Send> Sync for SharedMutPtr<T> {}

/// In-place parallel for-each over a mutable slice with **per-worker
/// scratch state** — the primitive behind the simulation engine's
/// intra-run phase parallelism (plan / apply phases iterate disjoint
/// per-node state; per-worker arenas keep the hot path allocation-free).
///
/// Semantics:
///
/// * `f(scratch, index, item)` runs exactly once per element; which
///   worker runs it is schedule-dependent, so `f` must derive its output
///   purely from `(scratch, index, item)` and shared immutable captures
///   — under that contract results are bit-identical for every thread
///   count, including 1.
/// * `scratch` is grown with `S::default()` to the worker count and
///   worker `w` exclusively uses `scratch[w]`; entries persist across
///   calls so capacity is reused round after round.
/// * Indices are claimed from an atomic cursor (dynamic load balancing —
///   heterogeneous per-node costs cannot serialize on one worker).
/// * Inside an already-parallel region (nested call, or a call made from
///   a `par_iter` worker such as a sweep repetition) the loop runs
///   serially on `scratch[0]`, mirroring real rayon's single global pool
///   — never threads².
pub fn par_for_each_scratch<T, S, F>(items: &mut [T], scratch: &mut Vec<S>, f: F)
where
    T: Send,
    S: Send + Default,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = configured_threads().min(n.max(1));
    if scratch.len() < threads {
        scratch.resize_with(threads, S::default);
    }
    if threads <= 1 || IN_PAR_REGION.with(|flag| flag.get()) {
        let s = &mut scratch[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(s, i, item);
        }
        return;
    }

    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let base = SharedMutPtr(items.as_mut_ptr(), PhantomData);
    let base = &base;
    let scratch_base = SharedMutPtr(scratch.as_mut_ptr(), PhantomData);
    let scratch_base = &scratch_base;
    let f = &f;
    pool::run(
        &move |w: usize| {
            // SAFETY: the pool hands each ordinal in 0..threads to
            // exactly one thread per job, so `scratch[w]` is borrowed
            // exclusively (and `w < threads <= scratch.len()` after the
            // resize above).
            let s = unsafe { &mut *scratch_base.0.add(w) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i` came from a fetch_add, so this worker
                // is the only one ever to receive it; the element
                // borrow is exclusive for the duration of `f`.
                let item = unsafe { &mut *base.0.add(i) };
                f(s, i, item);
            }
        },
        threads - 1,
    );
}

/// [`par_for_each_scratch`] without per-worker state.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let mut scratch: Vec<()> = Vec::new();
    par_for_each_scratch(items, &mut scratch, |(), i, item| f(i, item));
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = data.par_iter().map(|&x| x + 0.5).collect();
        assert_eq!(out, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn nested_parallelism_runs_inner_serially() {
        // Outer map is parallel; inner maps must not spawn another
        // thread layer (cores² threads). Observable contract: results
        // are still correct and ordered.
        let out: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                (0..4usize)
                    .into_par_iter()
                    .map(move |j| i * 10 + j)
                    .collect()
            })
            .collect();
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &[i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn stealing_balances_heterogeneous_items() {
        // The first chunk carries nearly all the work; with even
        // chunking the run serializes on worker 0, with stealing the
        // other workers drain it. Correctness contract: identical,
        // ordered output regardless of who computed what.
        crate::with_num_threads(4, || {
            let weights: Vec<u64> = (0..64).map(|i| if i < 16 { 200_000 } else { 10 }).collect();
            let out: Vec<u64> = weights
                .clone()
                .into_par_iter()
                .map(|w| (0..w).fold(0u64, |acc, x| acc.wrapping_add(x % 7)))
                .collect();
            let expect: Vec<u64> = weights
                .into_iter()
                .map(|w| (0..w).fold(0u64, |acc, x| acc.wrapping_add(x % 7)))
                .collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let reference: Vec<u64> = crate::with_num_threads(1, || {
            (0..500u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x))
                .collect()
        });
        for threads in [2, 3, 8, 64] {
            let out: Vec<u64> = crate::with_num_threads(threads, || {
                (0..500u64)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(x))
                    .collect()
            });
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn with_num_threads_restores_previous_override() {
        crate::with_num_threads(2, || {
            crate::with_num_threads(5, || {
                assert_eq!(super::configured_threads(), 5);
            });
            assert_eq!(super::configured_threads(), 2);
        });
    }

    #[test]
    fn for_each_mut_visits_every_index_once() {
        for threads in [1, 2, 4, 16] {
            crate::with_num_threads(threads, || {
                let mut v = vec![0u64; 1000];
                crate::par_for_each_mut(&mut v, |i, x| *x += i as u64 + 1);
                assert!(
                    v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1),
                    "threads={threads}"
                );
            });
        }
    }

    #[test]
    fn scratch_is_per_worker_and_persistent() {
        let mut scratch: Vec<Vec<u64>> = Vec::new();
        crate::with_num_threads(4, || {
            let mut v = vec![1u64; 256];
            crate::par_for_each_scratch(&mut v, &mut scratch, |s, i, x| {
                s.clear(); // per-item reset, as the engine does
                s.push(i as u64);
                *x += s[0];
            });
            assert!(v.iter().enumerate().all(|(i, &x)| x == 1 + i as u64));
        });
        assert!(
            !scratch.is_empty() && scratch.len() <= 4,
            "one scratch slot per worker: {}",
            scratch.len()
        );
        // A second call at a lower thread count reuses the pool.
        crate::with_num_threads(1, || {
            let mut v = vec![0u64; 8];
            crate::par_for_each_scratch(&mut v, &mut scratch, |_, i, x| *x = i as u64);
            assert_eq!(v, (0..8).collect::<Vec<_>>());
        });
    }

    #[test]
    fn for_each_nested_inside_par_iter_runs_serially() {
        crate::with_num_threads(4, || {
            let out: Vec<u64> = (0..8u64)
                .into_par_iter()
                .map(|i| {
                    let mut v = vec![i; 16];
                    crate::par_for_each_mut(&mut v, |j, x| *x += j as u64);
                    v.iter().sum()
                })
                .collect();
            let expect: Vec<u64> = (0..8u64).map(|i| 16 * i + (0..16).sum::<u64>()).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn for_each_empty_slice() {
        let mut v: Vec<u8> = Vec::new();
        crate::par_for_each_mut(&mut v, |_, _| unreachable!("no items"));
    }

    #[test]
    fn current_num_threads_reports_override() {
        crate::with_num_threads(3, || assert_eq!(crate::current_num_threads(), 3));
    }

    #[test]
    fn pool_workers_are_persistent() {
        // 64 workers = 63 helpers, the largest count any test in this
        // suite requests, so the pool cannot grow between the two reads
        // below (concurrent tests ask for fewer).
        let run = || {
            crate::with_num_threads(64, || {
                let out: Vec<u64> = (0..128u64).into_par_iter().map(|x| x + 1).collect();
                assert_eq!(out.len(), 128);
            });
        };
        run();
        let before = crate::pool_spawned_workers();
        assert!(before >= 63, "first 64-worker job spawned {before} helpers");
        for _ in 0..4 {
            run();
        }
        assert_eq!(
            crate::pool_spawned_workers(),
            before,
            "repeat jobs must reuse the spawned helpers, not grow the pool"
        );
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            crate::with_num_threads(4, || {
                let _: Vec<u64> = (0..64u64)
                    .into_par_iter()
                    .map(|x| {
                        assert!(x != 13, "boom");
                        x
                    })
                    .collect();
            });
        });
        assert!(result.is_err(), "the item panic must reach the caller");
        // The unwind skipped with_num_threads' restore; clean up so the
        // rest of this test thread is unaffected.
        super::THREAD_OVERRIDE.with(|c| c.set(None));
        // The pool keeps serving jobs after a worker panic.
        let out: Vec<u64> =
            crate::with_num_threads(4, || (0..8u64).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        let mut v = vec![0u64; 64];
        crate::with_num_threads(4, || {
            crate::par_for_each_mut(&mut v, |i, x| *x = i as u64);
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn more_threads_than_items() {
        let out: Vec<u32> =
            crate::with_num_threads(32, || (0..3u32).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, vec![1, 2, 3]);
    }
}
