//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so this shim
//! implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert*`, [`prop_oneof!`],
//! `any::<T>()`, `Just`, range strategies, tuple strategies,
//! `prop_map`, and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Linear shrinking, not value trees.** On a failing case the
//!   runner greedily applies [`strategy::Strategy::shrink`] candidates
//!   (integers step toward the range start, `Vec`s truncate and then
//!   shrink elements, tuples shrink coordinate-wise) and reports the
//!   smallest still-failing input; `prop_map`/`prop_oneof` values are
//!   not invertible and do not shrink.
//! * **Deterministic RNG.** Seeds are derived from the test's module
//!   path and name (FNV-1a) mixed with the case index via SplitMix64 —
//!   there is no `PROPTEST_` environment handling.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.

pub mod test_runner {
    //! Configuration and the deterministic RNG driving generation.

    /// Subset of proptest's config: only the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation-backed properties fast while still covering
            // the input space (cases are deterministic, not sampled
            // fresh each run).
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — tiny, full-period, and plenty for test-case
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn for_case(test_hash: u64, case: u32) -> Self {
            TestRng {
                state: test_hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift bounded sampling (Lemire); bias is
            // negligible for test generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// FNV-1a hash of a test path, used to derive per-test seeds.
    pub const fn fnv(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` directly
    /// produces one value, and [`Strategy::shrink`] proposes smaller
    /// variants of a failing value after the fact.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes simpler variants of `value`, best candidates first.
        ///
        /// The runner keeps the first candidate that still fails and
        /// repeats, so candidates must be strictly "smaller" than
        /// `value` under some well-founded order or shrinking may loop
        /// (the runner also caps total steps as a backstop). The
        /// default — for `prop_map`, `prop_oneof`, `Just`, `any` — is
        /// no candidates.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (**self).shrink(value)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            (**self).shrink(value)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally-weighted boxed strategies; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given arms; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Shrink candidates for an integer toward the range's low bound:
    /// the bound itself, the midpoint, and one step down. Strictly
    /// decreasing toward `lo`, so the greedy runner terminates.
    fn int_shrink(lo: i128, v: i128) -> Vec<i128> {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo {
                out.push(mid);
            }
            if v - 1 != lo && v - 1 != mid {
                out.push(v - 1);
            }
        }
        out
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    // span == 0 means the full u64 domain.
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        (lo + rng.below(span) as i128) as $t
                    }
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            lo + unit * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    // Tuple construction evaluates left to right, so the
                    // RNG draw order matches per-binding generation.
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut tuple = value.clone();
                            tuple.$idx = cand;
                            out.push(tuple);
                        }
                    )+
                    out
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait backing it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Internal helpers for the [`crate::proptest!`] expansion.

    use crate::strategy::Strategy;

    /// Pins a test-body closure's parameter type to `S::Value` so the
    /// tuple-destructuring pattern type-checks before any call site.
    pub fn bind_runner<S: Strategy, R, F: Fn(S::Value) -> R>(_strats: &S, f: F) -> F {
        f
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.start;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Structural candidates first: shorter vectors (never below
            // the strategy's minimum length).
            if value.len() > min {
                let half = min.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 != half {
                    out.push(value[..value.len() - 1].to_vec());
                }
                out.push(value[1..].to_vec());
            }
            // Then element-wise: the best shrink of each position.
            for i in 0..value.len() {
                if let Some(cand) = self.elem.shrink(&value[i]).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size in `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates sets whose size is uniform in `size` (best effort: if
    /// the element domain is too small to reach the drawn size, the
    /// set is as large as repeated draws could make it).
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            assert!(self.size.start < self.size.end, "empty set size range");
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64) + 64 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Drop-in for `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Panicking counterpart of `assert!` (real proptest returns a
/// `TestCaseError`; without shrinking, panicking loses nothing).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panicking counterpart of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panicking counterpart of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                const __TEST_HASH: u64 =
                    $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__TEST_HASH, __case);
                    // Bundle the bindings into one tuple strategy so a
                    // failing case can shrink coordinate-wise; tuple
                    // generation draws left to right, matching the old
                    // per-binding order (cases are unchanged).
                    let __strats = ($($strat,)+);
                    let __vals =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    let __run = $crate::__rt::bind_runner(&__strats, |($($binding,)+)| $body);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(__vals.clone())),
                    );
                    if let Err(__panic) = __outcome {
                        // Greedy linear shrink: keep the first candidate
                        // that still fails, restart from it, give up when
                        // no candidate fails or after a step cap. The
                        // panic hook is silenced so the candidate probes
                        // don't spam stderr.
                        let __hook = ::std::panic::take_hook();
                        ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                        let mut __current = __vals;
                        let mut __steps = 0u32;
                        '__shrinking: while __steps < 256 {
                            let __cands = $crate::strategy::Strategy::shrink(
                                &__strats, &__current,
                            );
                            for __cand in __cands {
                                let __failed = ::std::panic::catch_unwind(
                                    ::std::panic::AssertUnwindSafe(|| __run(__cand.clone())),
                                )
                                .is_err();
                                if __failed {
                                    __current = __cand;
                                    __steps += 1;
                                    continue '__shrinking;
                                }
                            }
                            break;
                        }
                        // Re-run the minimal case so the resumed panic's
                        // message matches the reported counterexample.
                        let __final = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(|| __run(__current.clone())),
                        );
                        ::std::panic::set_hook(__hook);
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic; re-run reproduces it)",
                            stringify!($name), __case, __cfg.cases,
                        );
                        eprintln!(
                            "proptest shim: minimal counterexample after {} shrink step(s): {} = {:?}",
                            __steps,
                            stringify!(($($binding),+)),
                            __current,
                        );
                        match __final {
                            Err(__p) => ::std::panic::resume_unwind(__p),
                            // A flaky body that stopped failing: fall back
                            // to the original panic.
                            Ok(_) => ::std::panic::resume_unwind(__panic),
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u64..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..100 {
            let s = Strategy::generate(&crate::collection::btree_set(0u64..1000, 4..12), &mut rng);
            assert!((4..12).contains(&s.len()));
        }
    }

    #[test]
    #[should_panic(expected = "empty vec size range")]
    fn vec_strategy_rejects_empty_size_range() {
        let mut rng = TestRng::for_case(9, 0);
        let _ = Strategy::generate(&crate::collection::vec(0u64..5, 3..3), &mut rng);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(4, 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        /// The macro itself: bindings, mut patterns, trailing comma.
        #[test]
        fn macro_smoke(mut xs in crate::collection::vec(0u32..10, 0..5), y in 5u64..6,) {
            xs.push(y as u32);
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(y, 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_config_header(v in any::<u64>()) {
            let _ = v;
        }
    }

    /// Greedy driver mirroring the macro's shrink loop, reusable against
    /// a plain predicate (no panics needed).
    fn shrink_to_minimal<S: Strategy>(
        strat: &S,
        start: S::Value,
        fails: impl Fn(&S::Value) -> bool,
    ) -> (S::Value, u32)
    where
        S::Value: Clone,
    {
        assert!(fails(&start), "shrink_to_minimal needs a failing start");
        let mut current = start;
        let mut steps = 0u32;
        'shrinking: while steps < 256 {
            for cand in strat.shrink(&current) {
                if fails(&cand) {
                    current = cand;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }
        (current, steps)
    }

    #[test]
    fn int_shrink_reaches_the_range_low() {
        // Any value fails: the minimum must be the range start.
        let (min, _) = shrink_to_minimal(&(10u64..500), 499, |_| true);
        assert_eq!(min, 10);
        let (min, _) = shrink_to_minimal(&(-20i32..=20), 17, |_| true);
        assert_eq!(min, -20);
    }

    #[test]
    fn int_shrink_finds_a_threshold_boundary() {
        // "fails iff v >= 100" must shrink to exactly 100.
        let (min, steps) = shrink_to_minimal(&(0u64..100_000), 73_421, |v| *v >= 100);
        assert_eq!(min, 100);
        // Bisection, not single steps: far fewer than 73k iterations.
        assert!(steps < 64, "took {steps} steps");
    }

    #[test]
    fn int_shrink_candidates_stay_in_range_and_below_value() {
        let strat = 5u64..50;
        for v in 6u64..50 {
            for c in strat.shrink(&v) {
                assert!((5..v).contains(&c), "candidate {c} for value {v}");
            }
        }
        assert!(strat.shrink(&5).is_empty(), "low bound must be terminal");
    }

    #[test]
    fn vec_shrink_respects_min_length_and_shrinks_elements() {
        let strat = crate::collection::vec(0u32..10, 2..8);
        // Any vec fails: minimal is the shortest allowed, all elements low.
        let (min, _) = shrink_to_minimal(&strat, vec![7, 3, 9, 1, 4, 2], |_| true);
        assert_eq!(min, vec![0, 0]);
    }

    #[test]
    fn vec_shrink_isolates_the_offending_element() {
        let strat = crate::collection::vec(0u32..10, 1..8);
        // Fails iff it contains a 9 somewhere.
        let (min, _) = shrink_to_minimal(&strat, vec![7, 3, 9, 1, 9, 2], |v| v.contains(&9));
        assert_eq!(min, vec![9]);
    }

    #[test]
    fn tuple_shrink_is_coordinate_wise() {
        let strat = (0u64..100, 0u64..100);
        // Fails iff a + b >= 30: greedy shrink lands on a boundary pair.
        let (min, _) = shrink_to_minimal(&strat, (80, 77), |(a, b)| a + b >= 30);
        assert_eq!(min.0 + min.1, 30);
        // And with a fully-free predicate both coordinates bottom out.
        let (min, _) = shrink_to_minimal(&strat, (80, 77), |_| true);
        assert_eq!(min, (0, 0));
    }

    #[test]
    fn single_binding_tuple_strategy_works() {
        let mut rng = TestRng::for_case(11, 0);
        let strat = (0u64..7,);
        for _ in 0..50 {
            let (v,) = Strategy::generate(&strat, &mut rng);
            assert!(v < 7);
        }
        assert_eq!(strat.shrink(&(6,)).first(), Some(&(0,)));
    }

    #[test]
    fn macro_reports_shrunk_counterexample() {
        // Run the generated test fn behind catch_unwind: the property
        // "v < 10_000" fails for some generated case and must panic.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn inner_failing(v in 0u64..1_000_000) {
                prop_assert!(v < 10_000);
            }
        }
        let panic = std::panic::catch_unwind(inner_failing).expect_err("property should fail");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        // The resumed panic comes from the minimal re-run, whose
        // assertion message embeds the shrunk (boundary) value.
        assert!(msg.contains("v < 10_000"), "unexpected message: {msg}");
    }
}
