//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so this shim
//! implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert*`, [`prop_oneof!`],
//! `any::<T>()`, `Just`, range strategies, tuple strategies,
//! `prop_map`, and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with its case index and
//!   seed; cases are deterministic per (test name, case index), so a
//!   failure reproduces exactly on re-run.
//! * **Deterministic RNG.** Seeds are derived from the test's module
//!   path and name (FNV-1a) mixed with the case index via SplitMix64 —
//!   there is no `PROPTEST_` environment handling.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.

pub mod test_runner {
    //! Configuration and the deterministic RNG driving generation.

    /// Subset of proptest's config: only the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation-backed properties fast while still covering
            // the input space (cases are deterministic, not sampled
            // fresh each run).
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — tiny, full-period, and plenty for test-case
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn for_case(test_hash: u64, case: u32) -> Self {
            TestRng {
                state: test_hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift bounded sampling (Lemire); bias is
            // negligible for test generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// FNV-1a hash of a test path, used to derive per-test seeds.
    pub const fn fnv(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `generate` directly produces one value.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally-weighted boxed strategies; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given arms; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    // span == 0 means the full u64 domain.
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        (lo + rng.below(span) as i128) as $t
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            lo + unit * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait backing it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size in `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates sets whose size is uniform in `size` (best effort: if
    /// the element domain is too small to reach the drawn size, the
    /// set is as large as repeated draws could make it).
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            assert!(self.size.start < self.size.end, "empty set size range");
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64) + 64 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Drop-in for `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Panicking counterpart of `assert!` (real proptest returns a
/// `TestCaseError`; without shrinking, panicking loses nothing).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panicking counterpart of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panicking counterpart of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                const __TEST_HASH: u64 =
                    $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__TEST_HASH, __case);
                    $(let $binding = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic; re-run reproduces it)",
                            stringify!($name), __case, __cfg.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u64..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..100 {
            let s = Strategy::generate(&crate::collection::btree_set(0u64..1000, 4..12), &mut rng);
            assert!((4..12).contains(&s.len()));
        }
    }

    #[test]
    #[should_panic(expected = "empty vec size range")]
    fn vec_strategy_rejects_empty_size_range() {
        let mut rng = TestRng::for_case(9, 0);
        let _ = Strategy::generate(&crate::collection::vec(0u64..5, 3..3), &mut rng);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(4, 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        /// The macro itself: bindings, mut patterns, trailing comma.
        #[test]
        fn macro_smoke(mut xs in crate::collection::vec(0u32..10, 0..5), y in 5u64..6,) {
            xs.push(y as u32);
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(y, 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_config_header(v in any::<u64>()) {
            let _ = v;
        }
    }
}
