//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the subset of criterion's API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `Throughput` and `BatchSize` — with
//! a simple calibrated wall-clock loop instead of criterion's full
//! statistical machinery. Output is one aligned line per benchmark:
//! mean time per iteration and, when a throughput was declared, the
//! derived rate.
//!
//! Timing method: each benchmark is warmed up for ~`WARMUP`, then run in
//! batches whose size is grown until a batch takes at least
//! `MIN_BATCH`; `sample_size` batches are measured and the mean of the
//! per-iteration times is reported. Good enough for regression spotting;
//! not a substitute for criterion's outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(60);
const MIN_BATCH: Duration = Duration::from_millis(8);

/// Declared throughput of one benchmark, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup; the shim runs one setup per
/// routine call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Top-level harness handle, passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), 20, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] (or a
/// batched variant) exactly once with the routine to measure.
pub struct Bencher {
    sample_size: usize,
    /// Mean seconds per iteration, filled in by `iter*`.
    mean_secs: f64,
}

impl Bencher {
    /// Measures `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the batch size.
        let mut batch = 1usize;
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            if t.elapsed() < MIN_BATCH && batch < (1 << 24) {
                batch *= 2;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += t.elapsed();
            iters += batch as u64;
        }
        self.mean_secs = total.as_secs_f64() / iters as f64;
    }

    /// Measures `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warm up untimed, so cold-cache first calls don't skew the
        // mean (keeps iter and iter_batched results comparable within
        // one group).
        let warm_start = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if warm_start.elapsed() >= WARMUP {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + MIN_BATCH * self.sample_size as u32;
        while iters < self.sample_size as u64 * 4 || (Instant::now() < deadline && iters < 1 << 20)
        {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.mean_secs = total.as_secs_f64() / iters as f64;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        sample_size,
        mean_secs: f64::NAN,
    };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if b.mean_secs > 0.0 => {
            format!("  {:>10}/s", human_bytes(n as f64 / b.mean_secs))
        }
        Some(Throughput::Elements(n)) if b.mean_secs > 0.0 => {
            format!("  {:>10.2} elem/s", n as f64 / b.mean_secs)
        }
        _ => String::new(),
    };
    println!("{id:<44} {:>12}/iter{rate}", human_time(b.mean_secs));
}

fn human_time(secs: f64) -> String {
    if !secs.is_finite() {
        return "n/a".into();
    }
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = rate;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Builds a function running each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Builds `fn main` invoking each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-selftest");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut b = Bencher {
            sample_size: 2,
            mean_secs: f64::NAN,
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert!(setups > 0);
        assert!(b.mean_secs.is_finite());
    }
}
