//! Argument parsing and command execution for the `raptee-cli` binary.
//!
//! Dependency-free by design (no clap offline): a small hand-rolled
//! `--key value` parser with typed accessors, unit-tested separately
//! from I/O.
//!
//! ```text
//! raptee-cli run    [--n 400] [--f 0.2] [--t 0.1] [--eviction adaptive]
//!                   [--view 16] [--rounds 200] [--seed 7] [--protocol raptee]
//!                   [--scale million] [--discovery sketch] [--reps 1] [--series]
//! raptee-cli sweep  [--eviction adaptive] [--reps 2] ...
//! raptee-cli ident  [--f 0.1] [--eviction 0.6] ...
//! raptee-cli inject [--t 0.01] [--injected 0.05] ...
//! ```

use raptee::EvictionPolicy;
use raptee_bench::Scale;
use raptee_sim::{
    runner, AdversaryMode, AttackStrategy, AuditConfig, ChurnBurst, ChurnSchedule, DiscoveryMode,
    EventNetConfig, LatencyModel, NetworkModel, PartitionWindow, Protocol, Reachability,
    RejoinPolicy, RetryConfig, Scenario, SegmentSpec, DEFAULT_AUDIT_GRACE,
};
use std::collections::BTreeMap;

/// A parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
}

/// Parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--key` had no value.
    MissingValue(String),
    /// A positional argument appeared where an option was expected.
    UnexpectedArgument(String),
    /// A value failed to parse for its option.
    BadValue {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
    },
    /// Unknown subcommand.
    UnknownCommand(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand (run|sweep|ident|inject)"),
            CliError::MissingValue(k) => write!(f, "option --{k} expects a value"),
            CliError::UnexpectedArgument(a) => write!(f, "unexpected argument {a:?}"),
            CliError::BadValue { key, value } => {
                write!(f, "invalid value {value:?} for --{key}")
            }
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] when the grammar is violated.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
        let mut iter = raw.into_iter();
        let command = iter.next().ok_or(CliError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(CliError::MissingCommand);
        }
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::UnexpectedArgument(arg.clone()))?
                .to_string();
            let value = iter
                .next()
                .ok_or_else(|| CliError::MissingValue(key.clone()))?;
            options.insert(key, value);
        }
        Ok(Args { command, options })
    }

    /// Typed option accessor with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] when present but unparsable.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                key: key.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Whether a boolean flag (`--series true` / presence with any value
    /// other than "false") is set.
    pub fn flag(&self, key: &str) -> bool {
        match self.options.get(key) {
            None => false,
            Some(v) => v != "false" && v != "0",
        }
    }

    /// Parses the `--eviction` option: `none`, `adaptive`, or a fixed
    /// rate like `0.6`.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on anything else.
    pub fn eviction(&self) -> Result<EvictionPolicy, CliError> {
        match self.options.get("eviction").map(String::as_str) {
            None | Some("adaptive") => Ok(EvictionPolicy::adaptive()),
            Some("none") => Ok(EvictionPolicy::none()),
            Some(v) => match v.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => Ok(EvictionPolicy::Fixed(r)),
                _ => Err(CliError::BadValue {
                    key: "eviction".into(),
                    value: v.into(),
                }),
            },
        }
    }

    /// Parses the `--protocol` option (`raptee` default, `brahms`,
    /// `basalt`, `basalt-tee`, `lift`, or `honeybee`). The BASALT family
    /// reads `--rotation` for its seed-rotation interval and runs
    /// `view_size` ranked slots; the BASALT+TEE hybrid additionally
    /// reads `--wlist-ttl` (rounds of hearsay quarantine, default 10)
    /// and takes its trusted tier from `--t`. LIFT reads `--fade`
    /// (hub-score fade interval, default 20) and Honeybee reads
    /// `--walk-length` (random-walk hop budget, default 5).
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on anything else.
    pub fn protocol(&self, view_size: usize) -> Result<Protocol, CliError> {
        self.named_protocol(
            self.options
                .get("protocol")
                .map_or("raptee", String::as_str),
            view_size,
        )
    }

    /// Resolves one protocol name (shared by `--protocol` and the
    /// `--population` entries).
    fn named_protocol(&self, name: &str, view_size: usize) -> Result<Protocol, CliError> {
        match name {
            "raptee" => Ok(Protocol::Raptee),
            "brahms" => Ok(Protocol::Brahms),
            "basalt" => Ok(Protocol::Basalt {
                view_size,
                rotation_interval: self.get("rotation", 30usize)?,
            }),
            "basalt-tee" => Ok(Protocol::BasaltTee {
                view_size,
                rotation_interval: self.get("rotation", 30usize)?,
                wlist_ttl: self.get("wlist-ttl", 10usize)?,
            }),
            "lift" => Ok(Protocol::Lift {
                view_size,
                fade_interval: self.get("fade", 20usize)?,
            }),
            "honeybee" => Ok(Protocol::Honeybee {
                view_size,
                walk_length: self.get("walk-length", 5usize)?,
            }),
            v => Err(CliError::BadValue {
                key: "protocol".into(),
                value: v.into(),
            }),
        }
    }

    /// Parses the `--population` option: a comma-separated list of
    /// `protocol:count` (absolute correct-node counts) or
    /// `protocol:share%` (percent of the correct population; the
    /// remainder after all percent segments lands in the last one)
    /// entries, e.g. `raptee:50%,basalt-tee:50%`.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] when an entry fails to parse.
    pub fn population(
        &self,
        view_size: usize,
        correct: usize,
    ) -> Result<Vec<SegmentSpec>, CliError> {
        let Some(spec) = self.options.get("population") else {
            return Ok(Vec::new());
        };
        let bad = |value: &str| CliError::BadValue {
            key: "population".into(),
            value: value.into(),
        };
        let mut segments = Vec::new();
        let mut allocated = 0usize;
        let mut percent_sum = 0.0f64;
        let mut all_percent = true;
        let entries: Vec<&str> = spec.split(',').collect();
        for entry in &entries {
            let (name, amount) = entry.split_once(':').ok_or_else(|| bad(entry))?;
            let protocol = self
                .named_protocol(name.trim(), view_size)
                .map_err(|_| bad(entry))?;
            let amount = amount.trim();
            let count = if let Some(pct) = amount.strip_suffix('%') {
                let pct: f64 = pct.trim().parse().map_err(|_| bad(entry))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(bad(entry));
                }
                percent_sum += pct;
                (correct as f64 * pct / 100.0).round() as usize
            } else {
                all_percent = false;
                amount.parse().map_err(|_| bad(entry))?
            };
            allocated += count;
            segments.push(SegmentSpec { protocol, count });
        }
        if all_percent {
            // Percent shares must cover the whole correct population —
            // a mistyped share errors instead of being silently
            // reinterpreted. Only *rounding* slack is absorbed, into the
            // final segment.
            if (percent_sum - 100.0).abs() > 1e-9 {
                return Err(bad(&format!(
                    "{spec} (shares sum to {percent_sum}%, need 100%)"
                )));
            }
            if let Some(last) = segments.last_mut() {
                let others = allocated - last.count;
                last.count = correct.saturating_sub(others);
                allocated = correct;
            }
        }
        if allocated != correct {
            return Err(bad(&format!(
                "{spec} (counts sum to {allocated}, but the correct population is {correct})"
            )));
        }
        Ok(segments)
    }

    /// Parses the `--scale` option: a named profile from the bench
    /// harness (`tiny|small|medium|paper|million`) whose N/view/rounds
    /// become the scenario defaults; explicit `--n`/`--view`/`--rounds`
    /// still win.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on an unknown profile name.
    pub fn scale(&self) -> Result<Option<Scale>, CliError> {
        match self.options.get("scale") {
            None => Ok(None),
            Some(name) => Scale::named(name)
                .map(Some)
                .ok_or_else(|| CliError::BadValue {
                    key: "scale".into(),
                    value: name.clone(),
                }),
        }
    }

    /// Parses the `--discovery` option (`auto` default, `exact`,
    /// `sketch`): how the system-discovery metric is tracked. `auto`
    /// picks exact bitsets up to the crossover population and HLL
    /// sketches above it.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on anything else.
    pub fn discovery(&self) -> Result<DiscoveryMode, CliError> {
        match self.options.get("discovery").map(String::as_str) {
            None | Some("auto") => Ok(DiscoveryMode::Auto),
            Some("exact") => Ok(DiscoveryMode::Exact),
            Some("sketch") => Ok(DiscoveryMode::Sketch),
            Some(v) => Err(CliError::BadValue {
                key: "discovery".into(),
                value: v.into(),
            }),
        }
    }

    /// Parses the network-model options. `--network events` selects the
    /// discrete-event delivery substrate; the shaping flags
    /// (`--latency`, `--round-ticks`, `--jitter`, `--partition`,
    /// `--nat`) configure it. Under the default round model a shaping
    /// flag is rejected rather than silently ignored.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on malformed specs or shaping flags
    /// without `--network events`.
    pub fn network(&self) -> Result<NetworkModel, CliError> {
        const SHAPING: [&str; 8] = [
            "latency",
            "round-ticks",
            "jitter",
            "partition",
            "nat",
            "retry",
            "duplicate",
            "reorder",
        ];
        let events = match self.options.get("network").map(String::as_str) {
            None | Some("rounds") => false,
            Some("events") => true,
            Some(v) => {
                return Err(CliError::BadValue {
                    key: "network".into(),
                    value: v.into(),
                })
            }
        };
        if !events {
            if let Some(k) = SHAPING.iter().find(|k| self.options.contains_key(**k)) {
                return Err(CliError::BadValue {
                    key: (*k).to_string(),
                    value: "requires --network events".into(),
                });
            }
            return Ok(NetworkModel::Rounds);
        }
        let round_ticks = self.get("round-ticks", 1_000u64)?;
        let duplicate_rate = self.get("duplicate", 0.0f64)?;
        if !(0.0..1.0).contains(&duplicate_rate) {
            return Err(CliError::BadValue {
                key: "duplicate".into(),
                value: self.options["duplicate"].clone(),
            });
        }
        Ok(NetworkModel::Events(EventNetConfig {
            latency: self.latency(round_ticks)?,
            round_ticks,
            jitter: self.get("jitter", 0u64)?,
            partitions: self.partitions()?,
            reachability: self.reachability()?,
            retry: self.retry()?,
            duplicate_rate,
            reorder_jitter: self.get("reorder", 0u64)?,
        }))
    }

    /// Parses `--retry max[:base-backoff]`: extra pull attempts after a
    /// missed deadline and the exponential-backoff base in ticks
    /// (default 250).
    fn retry(&self) -> Result<RetryConfig, CliError> {
        let Some(spec) = self.options.get("retry") else {
            return Ok(RetryConfig::default());
        };
        let bad = || CliError::BadValue {
            key: "retry".into(),
            value: spec.clone(),
        };
        let (max, backoff) = match spec.split_once(':') {
            Some((m, b)) => (m, Some(b)),
            None => (spec.as_str(), None),
        };
        let max_retries: u32 = max.parse().map_err(|_| bad())?;
        let base_backoff: u64 = match backoff {
            Some(b) => b.parse().map_err(|_| bad())?,
            None => 250,
        };
        if max_retries > 0 && base_backoff == 0 {
            return Err(bad());
        }
        Ok(RetryConfig {
            max_retries,
            base_backoff,
        })
    }

    /// Parses `--audit budget[:grace]`: challenges issued per round by
    /// the verifiable-audit challenger and the suspicion grace window in
    /// rounds (default 10).
    fn audit(&self) -> Result<Option<AuditConfig>, CliError> {
        let Some(spec) = self.options.get("audit") else {
            return Ok(None);
        };
        let bad = || CliError::BadValue {
            key: "audit".into(),
            value: spec.clone(),
        };
        let (budget, grace) = match spec.split_once(':') {
            Some((b, g)) => (b, Some(g)),
            None => (spec.as_str(), None),
        };
        let budget: usize = budget.parse().map_err(|_| bad())?;
        let grace: usize = match grace {
            Some(g) => g.parse().map_err(|_| bad())?,
            None => DEFAULT_AUDIT_GRACE,
        };
        if budget == 0 || grace == 0 {
            return Err(bad());
        }
        Ok(Some(AuditConfig { budget, grace }))
    }

    /// Parses the churn options: `--churn rate[:restart-rate]` (steady
    /// per-round crash/restart probabilities), `--catastrophe
    /// start..end@frac[;...]` (burst windows with a raised crash rate)
    /// and `--rejoin cold|warm` (how restarted nodes rebuild state).
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on malformed specs, out-of-range rates, or
    /// `--rejoin` without any restart process.
    fn churn(&self) -> Result<ChurnSchedule, CliError> {
        let mut churn = ChurnSchedule::default();
        if let Some(spec) = self.options.get("churn") {
            let bad = || CliError::BadValue {
                key: "churn".into(),
                value: spec.clone(),
            };
            let (crash, restart) = match spec.split_once(':') {
                Some((c, r)) => (c, Some(r)),
                None => (spec.as_str(), None),
            };
            churn.crash_rate = crash.parse().map_err(|_| bad())?;
            churn.restart_rate = match restart {
                Some(r) => r.parse().map_err(|_| bad())?,
                None => 0.0,
            };
            if !(0.0..1.0).contains(&churn.crash_rate) || !(0.0..=1.0).contains(&churn.restart_rate)
            {
                return Err(bad());
            }
        }
        if let Some(spec) = self.options.get("catastrophe") {
            let bad = |v: &str| CliError::BadValue {
                key: "catastrophe".into(),
                value: v.into(),
            };
            churn.bursts = spec
                .split(';')
                .map(|entry| {
                    let entry = entry.trim();
                    let (range, rate) = entry.split_once('@').ok_or_else(|| bad(entry))?;
                    let (start, end) = range.split_once("..").ok_or_else(|| bad(entry))?;
                    let (start, end): (usize, usize) = (
                        start.trim().parse().map_err(|_| bad(entry))?,
                        end.trim().parse().map_err(|_| bad(entry))?,
                    );
                    let crash_rate: f64 = rate.trim().parse().map_err(|_| bad(entry))?;
                    if start >= end || !(0.0..1.0).contains(&crash_rate) {
                        return Err(bad(entry));
                    }
                    Ok(ChurnBurst {
                        start,
                        end,
                        crash_rate,
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        match self.options.get("rejoin").map(String::as_str) {
            None => {}
            Some(v) if !churn.dynamic() => {
                return Err(CliError::BadValue {
                    key: "rejoin".into(),
                    value: format!("{v} (requires --churn or --catastrophe)"),
                });
            }
            Some("cold") => churn.rejoin = RejoinPolicy::Cold,
            Some("warm") => churn.rejoin = RejoinPolicy::Warm,
            Some(v) => {
                return Err(CliError::BadValue {
                    key: "rejoin".into(),
                    value: v.into(),
                });
            }
        }
        Ok(churn)
    }

    /// Parses `--latency const:T | uniform:LO..HI |
    /// lognormal:MU,SIGMA[,CAP]` (ticks; CAP defaults to ten rounds).
    fn latency(&self, round_ticks: u64) -> Result<LatencyModel, CliError> {
        let Some(spec) = self.options.get("latency") else {
            return Ok(LatencyModel::Constant(0));
        };
        let bad = || CliError::BadValue {
            key: "latency".into(),
            value: spec.clone(),
        };
        let (kind, params) = spec.split_once(':').ok_or_else(bad)?;
        match kind {
            "const" | "constant" => Ok(LatencyModel::Constant(params.parse().map_err(|_| bad())?)),
            "uniform" => {
                let (lo, hi) = params.split_once("..").ok_or_else(bad)?;
                let (min, max): (u64, u64) = (
                    lo.parse().map_err(|_| bad())?,
                    hi.parse().map_err(|_| bad())?,
                );
                if min > max {
                    return Err(bad());
                }
                Ok(LatencyModel::Uniform { min, max })
            }
            "lognormal" => {
                let parts: Vec<&str> = params.split(',').collect();
                if !(2..=3).contains(&parts.len()) {
                    return Err(bad());
                }
                let mu: f64 = parts[0].parse().map_err(|_| bad())?;
                let sigma: f64 = parts[1].parse().map_err(|_| bad())?;
                let cap: u64 = match parts.get(2) {
                    Some(c) => c.parse().map_err(|_| bad())?,
                    None => round_ticks.saturating_mul(10),
                };
                if sigma < 0.0 || cap == 0 {
                    return Err(bad());
                }
                Ok(LatencyModel::LogNormal { mu, sigma, cap })
            }
            _ => Err(bad()),
        }
    }

    /// Parses `--partition start..end@boundary[;start..end@boundary...]`
    /// (rounds and an actor-index boundary per window).
    fn partitions(&self) -> Result<Vec<PartitionWindow>, CliError> {
        let Some(spec) = self.options.get("partition") else {
            return Ok(Vec::new());
        };
        let bad = |v: &str| CliError::BadValue {
            key: "partition".into(),
            value: v.into(),
        };
        spec.split(';')
            .map(|entry| {
                let entry = entry.trim();
                let (range, boundary) = entry.split_once('@').ok_or_else(|| bad(entry))?;
                let (start, end) = range.split_once("..").ok_or_else(|| bad(entry))?;
                let (start, end): (usize, usize) = (
                    start.trim().parse().map_err(|_| bad(entry))?,
                    end.trim().parse().map_err(|_| bad(entry))?,
                );
                if start >= end {
                    return Err(bad(entry));
                }
                Ok(PartitionWindow {
                    start,
                    end,
                    boundary: boundary.trim().parse().map_err(|_| bad(entry))?,
                })
            })
            .collect()
    }

    /// Parses `--attack` (`balanced` default, `force-push`, or
    /// `targeted:fraction,focus` — e.g. `targeted:0.1,0.75`): the
    /// adversary's static push strategy.
    fn attack(&self) -> Result<AttackStrategy, CliError> {
        let Some(spec) = self.options.get("attack") else {
            return Ok(AttackStrategy::Balanced);
        };
        let bad = || CliError::BadValue {
            key: "attack".into(),
            value: spec.clone(),
        };
        match spec.as_str() {
            "balanced" => Ok(AttackStrategy::Balanced),
            "force-push" => Ok(AttackStrategy::ForcePush),
            s => {
                let params = s.strip_prefix("targeted:").ok_or_else(bad)?;
                let (fraction, focus) = params.split_once(',').ok_or_else(bad)?;
                let victim_fraction: f64 = fraction.trim().parse().map_err(|_| bad())?;
                let focus: f64 = focus.trim().parse().map_err(|_| bad())?;
                if !(0.0..=1.0).contains(&victim_fraction) || !(0.0..=1.0).contains(&focus) {
                    return Err(bad());
                }
                Ok(AttackStrategy::Targeted {
                    victim_fraction,
                    focus,
                })
            }
        }
    }

    /// Parses `--adversary` (`static` default or `adaptive`): whether
    /// the adversary plays `--attack` every round or lets the UCB bandit
    /// coordinator re-aim the budget by observed pollution yield.
    fn adversary_mode(&self) -> Result<AdversaryMode, CliError> {
        match self.options.get("adversary").map(String::as_str) {
            None | Some("static") => Ok(AdversaryMode::Static),
            Some("adaptive") => Ok(AdversaryMode::Adaptive),
            Some(v) => Err(CliError::BadValue {
                key: "adversary".into(),
                value: v.into(),
            }),
        }
    }

    /// Parses `--nat fraction[:ttl]`: the NAT-ted share of the correct
    /// population and the punched-hole TTL in rounds (default 3).
    fn reachability(&self) -> Result<Reachability, CliError> {
        let Some(spec) = self.options.get("nat") else {
            return Ok(Reachability::Full);
        };
        let bad = || CliError::BadValue {
            key: "nat".into(),
            value: spec.clone(),
        };
        let (fraction, ttl) = match spec.split_once(':') {
            Some((f, t)) => (f, Some(t)),
            None => (spec.as_str(), None),
        };
        let fraction: f64 = fraction.parse().map_err(|_| bad())?;
        if !(0.0..1.0).contains(&fraction) {
            return Err(bad());
        }
        let hole_ttl: usize = match ttl {
            Some(t) => t.parse().map_err(|_| bad())?,
            None => 3,
        };
        if hole_ttl == 0 {
            return Err(bad());
        }
        Ok(Reachability::Nat { fraction, hole_ttl })
    }

    /// Builds the scenario common to all subcommands.
    ///
    /// # Errors
    ///
    /// Propagates option-parsing failures.
    pub fn scenario(&self) -> Result<Scenario, CliError> {
        let scale = self.scale()?;
        let (n_default, view_default, rounds_default) =
            scale.map_or((400, 16, 200), |s| (s.n, s.view, s.rounds));
        let view = self.get("view", view_default)?;
        let rounds = self.get("rounds", rounds_default)?;
        // `--t` is ignored under `--protocol basalt` (no trusted tier
        // exists); an explicit `--injected` under BASALT is rejected by
        // `Scenario::validate` when the simulation starts.
        let mut scenario = Scenario {
            n: self.get("n", n_default)?,
            byzantine_fraction: self.get("f", 0.10f64)?,
            trusted_fraction: self.get("t", 0.01f64)?,
            injected_poisoned_fraction: self.get("injected", 0.0f64)?,
            eviction: self.eviction()?,
            view_size: view,
            sample_size: view,
            rounds,
            tail_window: (rounds / 10).max(5),
            protocol: self.protocol(view)?,
            attack: self.attack()?,
            adversary_mode: self.adversary_mode()?,
            discovery: self.discovery()?,
            network: self.network()?,
            churn: self.churn()?,
            attest_ttl: self.get("attest-ttl", 0usize)?,
            audit: self.audit()?,
            trusted_directory_refresh: self.get("trusted-refresh", 0usize)?,
            seed: self.get("seed", 0x5A97EE_u64)?,
            ..Scenario::default()
        };
        // Attestation expiry degrades the trusted tier — meaningless
        // (and rejected) when the scenario runs no trusted nodes.
        if scenario.attest_ttl > 0 && scenario.trusted_count() == 0 {
            return Err(CliError::BadValue {
                key: "attest-ttl".into(),
                value: "requires a trusted tier (--t > 0 under a TEE protocol)".into(),
            });
        }
        let correct = scenario.n - scenario.byzantine_count();
        scenario.population = self.population(view, correct)?;
        // The audit layer only makes sense with commitments to audit:
        // it needs a trusted tier, and an attestation TTL shorter than
        // the grace window would make expired-but-honest trusted nodes
        // look convictable (the library assert rejects it too — surface
        // it as a CLI error instead).
        if let Some(audit) = scenario.audit {
            if scenario.trusted_count() == 0 {
                return Err(CliError::BadValue {
                    key: "audit".into(),
                    value: "requires a trusted tier (--t > 0 under a TEE protocol)".into(),
                });
            }
            if scenario.attest_ttl > 0 && scenario.attest_ttl < audit.grace {
                return Err(CliError::BadValue {
                    key: "audit".into(),
                    value: format!(
                        "grace window {} exceeds --attest-ttl {} (expired-but-honest \
                         nodes would stay suspect past certificate renewal)",
                        audit.grace, scenario.attest_ttl
                    ),
                });
            }
        }
        Ok(scenario)
    }
}

/// The usage string printed on error or `help`.
pub const USAGE: &str = "raptee-cli — drive the RAPTEE reproduction from the command line

USAGE:
    raptee-cli <run|sweep|ident|inject|help> [--key value]...

COMMON OPTIONS:
    --n <usize>        population size            [default: 400]
    --f <f64>          Byzantine fraction         [default: 0.10]
    --t <f64>          trusted fraction           [default: 0.01]
    --view <usize>     view/sample size           [default: 16]
    --rounds <usize>   rounds per run             [default: 200]
    --scale <name>     tiny | small | medium | paper | million — preset
                       n/view/rounds defaults (explicit flags still win)
    --discovery <m>    auto | exact | sketch      [default: auto]
                       auto = exact bitsets up to 16384 actors, HLL
                       cardinality sketches (~6.5% std error) above
    --seed <u64>       master seed
    --reps <usize>     repetitions                [default: 1]
    --eviction <p>     none | adaptive | 0.0..1.0 [default: adaptive]
    --protocol <p>     raptee | brahms | basalt | basalt-tee | lift |
                       honeybee                   [default: raptee]
    --rotation <usize> BASALT seed-rotation interval in rounds [default: 30]
    --wlist-ttl <usize> basalt-tee hearsay-quarantine TTL in rounds [default: 10]
    --fade <usize>     LIFT hub-score fade interval in rounds [default: 20]
    --walk-length <usize> Honeybee verified-walk hop budget [default: 5]
    --attack <s>       balanced | force-push | targeted:fraction,focus —
                       the adversary's static push strategy [default: balanced]
    --adversary <m>    static | adaptive — adaptive re-aims the lawful
                       budget each round with a UCB bandit over
                       (segment, strategy) arms    [default: static]
    --population <s>   mixed population: comma-separated protocol:count or
                       protocol:share% entries over the correct nodes,
                       e.g. raptee:50%,basalt-tee:50% (overrides --protocol;
                       per-segment pollution is reported alongside the total)

NETWORK OPTIONS (all but --network require --network events):
    --network <m>      rounds | events            [default: rounds]
                       events = discrete-event delivery: per-link latency,
                       partitions and NAT instead of lockstep rounds
    --latency <l>      const:T | uniform:LO..HI | lognormal:MU,SIGMA[,CAP]
                       in ticks                   [default: const:0]
    --round-ticks <u64> virtual ticks per round   [default: 1000]
    --jitter <u64>     max per-node round-timer offset in ticks [default: 0]
    --partition <s>    semicolon-separated cut windows start..end@boundary,
                       e.g. 10..25@75 (rounds start..end, cut before actor
                       index boundary; held messages release at the heal)
    --nat <s>          fraction[:ttl] — share of correct nodes behind
                       NAT-like asymmetric reachability; inbound traffic
                       needs a hole punched within ttl rounds [default ttl: 3]
    --retry <s>        max[:base-backoff] — extra pull attempts after a
                       missed deadline, exponential backoff base in ticks
                       [default backoff: 250]
    --duplicate <f64>  probability a pull answer is delivered twice
                       (nonce dedup suppresses the copy) [default: 0]
    --reorder <u64>    extra hash-derived delay in [0, N] ticks on
                       duplicate copies (reorders them)  [default: 0]

FAULT OPTIONS (round and event network alike):
    --churn <s>        rate[:restart-rate] — steady per-round crash
                       probability for live correct nodes and restart
                       probability for crashed ones   [default: 0 / 0]
    --catastrophe <s>  semicolon-separated burst windows start..end@rate,
                       e.g. 20..25@0.4 — the crash rate is raised inside
                       the window (correlated failures)
    --rejoin <p>       cold | warm — restarted nodes rebootstrap from
                       scratch (cold) or keep their view with a staleness
                       penalty (warm); needs --churn or --catastrophe
                       [default: cold]
    --attest-ttl <u>   attestation-certificate lifetime in rounds; expired
                       trusted nodes act untrusted until re-attestation
                       heals them (0 = certificates never expire)

AUDIT OPTIONS (require a trusted tier):
    --audit <s>        budget[:grace] — enable the verifiable audit layer:
                       the challenger issues budget merkle-opening
                       challenges per round; unanswered audits decay
                       after grace rounds [default grace: 10]; proof
                       inconsistency convicts and quarantines the node
    --trusted-refresh <u> rounds between proactive trusted-directory
                       exchanges on the trusted tier (0 = off)

SUBCOMMANDS:
    run      one scenario; add --series true to dump the pollution curve as CSV
    sweep    f × t grid vs the Brahms baseline (fig 5-9 shape)
    ident    trusted-node identification attack (fig 10-12 shape)
    inject   view-poisoned trusted node injection (fig 13 shape); --injected <f64>
";

/// Executes a parsed command; returns the text to print.
///
/// # Errors
///
/// Returns usage/validation errors as [`CliError`].
pub fn execute(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" => Ok(USAGE.to_string()),
        "run" => cmd_run(args),
        "sweep" => cmd_sweep(args),
        "ident" => cmd_ident(args),
        "inject" => cmd_inject(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let scenario = args.scenario()?;
    let reps = args.get("reps", 1usize)?;
    let agg = runner::run_repeated(&scenario, reps);
    let mut out = String::new();
    let population = if scenario.population.is_empty() {
        format!("protocol={}", scenario.protocol.label())
    } else {
        let parts: Vec<String> = scenario
            .population
            .iter()
            .map(|s| format!("{}:{}", s.protocol.label(), s.count))
            .collect();
        format!("population={}", parts.join(","))
    };
    let network = match scenario.network {
        NetworkModel::Rounds => "rounds",
        NetworkModel::Events(_) => "events",
    };
    out.push_str(&format!(
        "{population} n={} f={:.0}% t={:.0}% eviction={} rounds={} reps={reps} discovery={} network={network}\n",
        scenario.n,
        scenario.byzantine_fraction * 100.0,
        // The *effective* trusted share: 0 under Brahms/BASALT even when
        // a --t default or flag is present.
        scenario.trusted_count() as f64 / scenario.n as f64 * 100.0,
        scenario.eviction.label(),
        scenario.rounds,
        if scenario.sketch_discovery() {
            "sketch"
        } else {
            "exact"
        },
    ));
    out.push_str(&format!(
        "resilience: {:.2}% Byzantine IDs in non-Byzantine views\n",
        agg.resilience * 100.0
    ));
    if agg.segments.len() > 1 {
        for seg in &agg.segments {
            out.push_str(&format!(
                "  segment {:10} ({} nodes): {:.2}%   discovery {}   stability {}\n",
                seg.protocol.label(),
                seg.nodes,
                seg.resilience * 100.0,
                seg.discovery_round
                    .map_or("-".into(), |r| format!("{r:.1}")),
                seg.stability_round
                    .map_or("-".into(), |r| format!("{r:.1}")),
            ));
        }
    }
    out.push_str(&format!(
        "discovery round: {}   stability round: {}\n",
        agg.discovery_round
            .map_or("-".into(), |r| format!("{r:.1}")),
        agg.stability_round
            .map_or("-".into(), |r| format!("{r:.1}")),
    ));
    if let Some(availability) = agg.availability {
        out.push_str(&format!(
            "availability: {:.2}%   time-to-recover: {}\n",
            availability * 100.0,
            agg.time_to_recover
                .map_or("-".into(), |r| format!("{r:.1} rounds")),
        ));
    }
    if let Some(audit) = scenario.audit {
        out.push_str(&format!(
            "audit (budget {}, grace {}): convictions {}   false accusations {}   detection latency {}\n",
            audit.budget,
            audit.grace,
            agg.audit_convictions
                .map_or("-".into(), |c| format!("{c:.1}")),
            agg.audit_false_accusations
                .map_or("-".into(), |c| format!("{c:.1}")),
            agg.audit_detection_latency
                .map_or("-".into(), |l| format!("{l:.1} rounds")),
        ));
    }
    if args.flag("series") {
        let run = runner::run_scenario(scenario);
        out.push_str("round,byzantine_share\n");
        for (i, v) in run.byz_share_series.iter().enumerate() {
            out.push_str(&format!("{i},{v:.4}\n"));
        }
    }
    Ok(out)
}

fn cmd_sweep(args: &Args) -> Result<String, CliError> {
    let template = args.scenario()?;
    let reps = args.get("reps", 1usize)?;
    let fs = [0.10, 0.14, 0.18, 0.22, 0.26, 0.30];
    let ts = [0.01, 0.05, 0.10, 0.20, 0.30, 0.50];
    let sweep = runner::sweep_grid(&template, &fs, &ts, reps);
    let mut out = String::from("f,t,improvement_pct,resilience,baseline\n");
    for (f, t, result) in &sweep.grid {
        let base = sweep.baseline(*f).expect("baseline per f");
        out.push_str(&format!(
            "{f:.2},{t:.2},{:.2},{:.4},{:.4}\n",
            runner::resilience_improvement_pct(base, result),
            result.resilience,
            base.resilience,
        ));
    }
    Ok(out)
}

/// Rejects the ranked families (BASALT/LIFT/Honeybee) and mixed
/// populations for the uniform-RAPTEE-only attack subcommands with the
/// CLI's usual error path (rather than the library assert).
fn require_trusted_tier(scenario: &Scenario) -> Result<(), CliError> {
    if !scenario.population.is_empty() {
        return Err(CliError::BadValue {
            key: "population".into(),
            value: "mixed populations (this attack needs a uniform RAPTEE run)".into(),
        });
    }
    if scenario.protocol.is_ranked_family() {
        return Err(CliError::BadValue {
            key: "protocol".into(),
            value: format!(
                "{} (this attack needs the uniform RAPTEE protocol)",
                scenario.protocol.label()
            ),
        });
    }
    Ok(())
}

fn cmd_ident(args: &Args) -> Result<String, CliError> {
    let mut scenario = args.scenario()?;
    require_trusted_tier(&scenario)?;
    scenario.identification_attack = true;
    let reps = args.get("reps", 1usize)?;
    let agg = runner::run_repeated(&scenario, reps);
    Ok(format!(
        "identification attack (f={:.0}%, t={:.0}%, {}):\nprecision={:.3} recall={:.3} f1={:.3}\n",
        scenario.byzantine_fraction * 100.0,
        scenario.trusted_fraction * 100.0,
        scenario.eviction.label(),
        agg.ident_precision,
        agg.ident_recall,
        agg.ident_f1,
    ))
}

fn cmd_inject(args: &Args) -> Result<String, CliError> {
    let scenario = args.scenario()?;
    require_trusted_tier(&scenario)?;
    let reps = args.get("reps", 1usize)?;
    let baseline = runner::run_repeated(&scenario.brahms_baseline(), reps);
    let clean = runner::run_repeated(
        &Scenario {
            injected_poisoned_fraction: 0.0,
            ..scenario.clone()
        },
        reps,
    );
    let attacked = runner::run_repeated(&scenario, reps);
    Ok(format!(
        "injection attack (t={:.0}%, +{:.0}% poisoned):\n\
         clean improvement:    {:.2}%\n\
         attacked improvement: {:.2}%\n",
        scenario.trusted_fraction * 100.0,
        scenario.injected_poisoned_fraction * 100.0,
        runner::resilience_improvement_pct(&baseline, &clean),
        runner::resilience_improvement_pct(&baseline, &attacked),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, CliError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = args(&["run", "--n", "100", "--f", "0.2"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("n", 0usize).unwrap(), 100);
        assert_eq!(a.get("f", 0.0f64).unwrap(), 0.2);
        assert_eq!(a.get("rounds", 200usize).unwrap(), 200, "default applies");
    }

    #[test]
    fn rejects_bad_grammar() {
        assert_eq!(args(&[]).unwrap_err(), CliError::MissingCommand);
        assert_eq!(args(&["--n", "5"]).unwrap_err(), CliError::MissingCommand);
        assert_eq!(
            args(&["run", "--n"]).unwrap_err(),
            CliError::MissingValue("n".into())
        );
        assert_eq!(
            args(&["run", "stray"]).unwrap_err(),
            CliError::UnexpectedArgument("stray".into())
        );
    }

    #[test]
    fn rejects_bad_values() {
        let a = args(&["run", "--n", "lots"]).unwrap();
        assert!(matches!(a.get("n", 0usize), Err(CliError::BadValue { .. })));
        let a = args(&["run", "--eviction", "1.5"]).unwrap();
        assert!(a.eviction().is_err());
        let a = args(&["run", "--protocol", "bitcoin"]).unwrap();
        assert!(a.protocol(16).is_err());
    }

    #[test]
    fn eviction_forms() {
        assert_eq!(
            args(&["run"]).unwrap().eviction().unwrap(),
            EvictionPolicy::adaptive()
        );
        assert_eq!(
            args(&["run", "--eviction", "none"])
                .unwrap()
                .eviction()
                .unwrap(),
            EvictionPolicy::Fixed(0.0)
        );
        assert_eq!(
            args(&["run", "--eviction", "0.4"])
                .unwrap()
                .eviction()
                .unwrap(),
            EvictionPolicy::Fixed(0.4)
        );
    }

    #[test]
    fn scenario_construction() {
        let a = args(&["run", "--n", "120", "--f", "0.3", "--rounds", "50"]).unwrap();
        let s = a.scenario().unwrap();
        assert_eq!(s.n, 120);
        assert_eq!(s.byzantine_fraction, 0.3);
        assert_eq!(s.rounds, 50);
        s.validate();
    }

    #[test]
    fn scale_presets_apply_and_yield_to_explicit_flags() {
        let s = args(&["run", "--scale", "tiny"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!((s.n, s.view_size, s.rounds), (150, 12, 250));
        let s = args(&["run", "--scale", "tiny", "--n", "99", "--rounds", "40"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!((s.n, s.view_size, s.rounds), (99, 12, 40));
        let s = args(&["run", "--scale", "million"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(s.n, 1_000_000);
        assert!(s.sketch_discovery(), "million auto-selects sketches");
        let err = args(&["run", "--scale", "galactic"])
            .unwrap()
            .scenario()
            .unwrap_err();
        assert!(matches!(err, CliError::BadValue { ref key, .. } if key == "scale"));
    }

    #[test]
    fn discovery_modes_parse() {
        let a = args(&["run"]).unwrap();
        assert_eq!(a.discovery().unwrap(), DiscoveryMode::Auto);
        let a = args(&["run", "--discovery", "exact"]).unwrap();
        assert_eq!(a.discovery().unwrap(), DiscoveryMode::Exact);
        let a = args(&["run", "--discovery", "sketch"]).unwrap();
        assert_eq!(a.discovery().unwrap(), DiscoveryMode::Sketch);
        assert!(a.scenario().unwrap().sketch_discovery());
        let a = args(&["run", "--discovery", "psychic"]).unwrap();
        assert!(matches!(
            a.discovery().unwrap_err(),
            CliError::BadValue { ref key, .. } if key == "discovery"
        ));
    }

    #[test]
    fn run_reports_discovery_mode() {
        let a = args(&[
            "run",
            "--n",
            "60",
            "--rounds",
            "10",
            "--view",
            "8",
            "--discovery",
            "sketch",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("discovery=sketch"), "{out}");
        let a = args(&["run", "--n", "60", "--rounds", "10", "--view", "8"]).unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("discovery=exact"), "{out}");
    }

    #[test]
    fn execute_help_and_unknown() {
        let help = execute(&args(&["help"]).unwrap()).unwrap();
        assert!(help.contains("USAGE"));
        assert_eq!(
            execute(&args(&["frobnicate"]).unwrap()).unwrap_err(),
            CliError::UnknownCommand("frobnicate".into())
        );
    }

    #[test]
    fn execute_small_run() {
        let a = args(&[
            "run", "--n", "80", "--rounds", "20", "--view", "10", "--t", "0.1",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
    }

    #[test]
    fn execute_small_ident() {
        let a = args(&[
            "ident", "--n", "80", "--rounds", "20", "--view", "10", "--t", "0.2",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("precision="), "{out}");
    }

    #[test]
    fn basalt_protocol_parses_and_runs() {
        let a = args(&["run", "--protocol", "basalt", "--rotation", "10"]).unwrap();
        assert_eq!(
            a.protocol(16).unwrap(),
            Protocol::Basalt {
                view_size: 16,
                rotation_interval: 10
            }
        );
        let s = a.scenario().unwrap();
        assert_eq!(s.trusted_count(), 0, "BASALT runs no trusted tier");
        s.validate();
        let a = args(&[
            "run",
            "--protocol",
            "basalt",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
        assert!(
            out.contains("t=0%"),
            "no trusted tier must be reported: {out}"
        );
    }

    #[test]
    fn attack_subcommands_reject_basalt_cleanly() {
        for cmd in ["ident", "inject"] {
            for protocol in ["basalt", "basalt-tee"] {
                let a =
                    args(&[cmd, "--protocol", protocol, "--n", "80", "--rounds", "10"]).unwrap();
                let err = execute(&a).unwrap_err();
                assert!(
                    matches!(err, CliError::BadValue { ref key, .. } if key == "protocol"),
                    "{cmd}/{protocol} must fail with the CLI error path, got {err:?}"
                );
            }
            let a = args(&[
                cmd,
                "--population",
                "raptee:50%,brahms:50%",
                "--n",
                "80",
                "--rounds",
                "10",
            ])
            .unwrap();
            let err = execute(&a).unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { ref key, .. } if key == "population"),
                "{cmd} must reject mixed populations, got {err:?}"
            );
        }
    }

    #[test]
    fn basalt_tee_protocol_parses_and_runs() {
        let a = args(&[
            "run",
            "--protocol",
            "basalt-tee",
            "--rotation",
            "12",
            "--wlist-ttl",
            "6",
            "--t",
            "0.1",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
        ])
        .unwrap();
        assert_eq!(
            a.protocol(10).unwrap(),
            Protocol::BasaltTee {
                view_size: 10,
                rotation_interval: 12,
                wlist_ttl: 6
            }
        );
        let s = a.scenario().unwrap();
        s.validate();
        assert_eq!(s.trusted_count(), 8, "the hybrid keeps its trusted tier");
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
        assert!(out.contains("t=10%"), "{out}");
    }

    #[test]
    fn lift_protocol_parses_and_runs() {
        let a = args(&["run", "--protocol", "lift", "--fade", "8"]).unwrap();
        assert_eq!(
            a.protocol(16).unwrap(),
            Protocol::Lift {
                view_size: 16,
                fade_interval: 8
            }
        );
        let a = args(&[
            "run",
            "--protocol",
            "lift",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
        ])
        .unwrap();
        let s = a.scenario().unwrap();
        assert_eq!(s.trusted_count(), 0, "LIFT runs no trusted tier");
        s.validate();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
    }

    #[test]
    fn honeybee_protocol_parses_and_runs() {
        let a = args(&["run", "--protocol", "honeybee", "--walk-length", "4"]).unwrap();
        assert_eq!(
            a.protocol(16).unwrap(),
            Protocol::Honeybee {
                view_size: 16,
                walk_length: 4
            }
        );
        let a = args(&[
            "run",
            "--protocol",
            "honeybee",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
        ])
        .unwrap();
        let s = a.scenario().unwrap();
        s.validate();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
    }

    #[test]
    fn attack_and_adversary_options_parse() {
        let a = args(&["run", "--attack", "force-push"]).unwrap();
        assert_eq!(a.scenario().unwrap().attack, AttackStrategy::ForcePush);
        let a = args(&["run", "--attack", "targeted:0.1,0.75"]).unwrap();
        assert_eq!(
            a.scenario().unwrap().attack,
            AttackStrategy::Targeted {
                victim_fraction: 0.1,
                focus: 0.75
            }
        );
        let a = args(&["run", "--adversary", "adaptive"]).unwrap();
        assert_eq!(
            a.scenario().unwrap().adversary_mode,
            AdversaryMode::Adaptive
        );
        // Defaults stay the historical static/balanced pair.
        let a = args(&["run"]).unwrap();
        let s = a.scenario().unwrap();
        assert_eq!(s.attack, AttackStrategy::Balanced);
        assert_eq!(s.adversary_mode, AdversaryMode::Static);
        for bad in [
            vec!["run", "--attack", "nuclear"],
            vec!["run", "--attack", "targeted:2.0,0.5"],
            vec!["run", "--adversary", "psychic"],
        ] {
            let a = args(&bad).unwrap();
            assert!(a.scenario().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn adaptive_adversary_runs_end_to_end() {
        let a = args(&[
            "run",
            "--protocol",
            "lift",
            "--adversary",
            "adaptive",
            "--n",
            "60",
            "--rounds",
            "15",
            "--view",
            "8",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
    }

    #[test]
    fn population_option_parses_counts_and_percents() {
        let a = args(&[
            "run",
            "--n",
            "100",
            "--population",
            "raptee:45,basalt-tee:45",
        ])
        .unwrap();
        let s = a.scenario().unwrap();
        s.validate();
        assert_eq!(s.population.len(), 2);
        assert_eq!(s.population[0].count, 45);

        let a = args(&[
            "run",
            "--n",
            "100",
            "--population",
            "raptee:50%,basalt-tee:50%",
        ])
        .unwrap();
        let s = a.scenario().unwrap();
        s.validate();
        // 90 correct nodes: 45 + the remainder-absorbing last segment.
        assert_eq!(s.population[0].count + s.population[1].count, 90);
    }

    #[test]
    fn population_run_reports_segments() {
        let a = args(&[
            "run",
            "--n",
            "80",
            "--rounds",
            "15",
            "--view",
            "10",
            "--t",
            "0.1",
            "--population",
            "raptee:50%,basalt-tee:50%",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("population=raptee:"), "{out}");
        assert!(out.contains("segment raptee"), "{out}");
        assert!(out.contains("segment basalt-tee"), "{out}");
        for line in out.lines().filter(|l| l.contains("segment ")) {
            assert!(
                line.contains("discovery ") && line.contains("stability "),
                "per-segment rounds must be reported: {line}"
            );
        }
    }

    #[test]
    fn population_bad_entries_rejected() {
        for spec in [
            "raptee",
            "raptee:many",
            "bitcoin:40",
            "raptee:140%",
            // Mistyped shares must error, not be silently reinterpreted.
            "raptee:30%,basalt-tee:20%",
            // Absolute counts that miss the correct population must take
            // the CLI error path, not a library assert.
            "raptee:10,basalt-tee:10",
        ] {
            let a = args(&["run", "--population", spec]).unwrap();
            let err = a.scenario().unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { ref key, .. } if key == "population"),
                "{spec:?} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn network_defaults_to_rounds() {
        let a = args(&["run"]).unwrap();
        assert_eq!(a.network().unwrap(), NetworkModel::Rounds);
        let a = args(&["run", "--network", "rounds"]).unwrap();
        assert_eq!(a.network().unwrap(), NetworkModel::Rounds);
        let a = args(&["run", "--network", "events"]).unwrap();
        assert_eq!(
            a.network().unwrap(),
            NetworkModel::Events(EventNetConfig::default()),
            "bare --network events is the zero-latency equivalence config"
        );
        let a = args(&["run", "--network", "carrier-pigeon"]).unwrap();
        assert!(matches!(
            a.network().unwrap_err(),
            CliError::BadValue { ref key, .. } if key == "network"
        ));
    }

    #[test]
    fn latency_forms_parse() {
        let net = |extra: &[&str]| {
            let mut v = vec!["run", "--network", "events"];
            v.extend_from_slice(extra);
            args(&v).unwrap().network()
        };
        let latency = |extra: &[&str]| match net(extra).unwrap() {
            NetworkModel::Events(cfg) => cfg.latency,
            NetworkModel::Rounds => unreachable!(),
        };
        assert_eq!(
            latency(&["--latency", "const:250"]),
            LatencyModel::Constant(250)
        );
        assert_eq!(
            latency(&["--latency", "uniform:50..600"]),
            LatencyModel::Uniform { min: 50, max: 600 }
        );
        assert_eq!(
            latency(&["--latency", "lognormal:6.2,0.8,5000"]),
            LatencyModel::LogNormal {
                mu: 6.2,
                sigma: 0.8,
                cap: 5_000
            }
        );
        assert_eq!(
            latency(&["--latency", "lognormal:6.2,0.8"]),
            LatencyModel::LogNormal {
                mu: 6.2,
                sigma: 0.8,
                cap: 10_000
            },
            "cap defaults to ten rounds of the tick budget"
        );
        for bad in [
            "warp",
            "const:fast",
            "uniform:600..50",
            "uniform:50",
            "lognormal:6.2",
            "lognormal:6.2,-0.1",
            "lognormal:6.2,0.8,0",
        ] {
            assert!(
                matches!(
                    net(&["--latency", bad]).unwrap_err(),
                    CliError::BadValue { ref key, .. } if key == "latency"
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn partition_and_nat_parse() {
        let a = args(&[
            "run",
            "--network",
            "events",
            "--partition",
            "10..25@75; 30..35@40",
            "--nat",
            "0.4:3",
            "--jitter",
            "200",
            "--round-ticks",
            "500",
        ])
        .unwrap();
        let NetworkModel::Events(cfg) = a.network().unwrap() else {
            panic!("events expected");
        };
        assert_eq!(
            cfg.partitions,
            vec![
                PartitionWindow {
                    start: 10,
                    end: 25,
                    boundary: 75
                },
                PartitionWindow {
                    start: 30,
                    end: 35,
                    boundary: 40
                },
            ]
        );
        assert_eq!(
            cfg.reachability,
            Reachability::Nat {
                fraction: 0.4,
                hole_ttl: 3
            }
        );
        assert_eq!((cfg.round_ticks, cfg.jitter), (500, 200));
        // `--nat fraction` alone picks the default TTL.
        let a = args(&["run", "--network", "events", "--nat", "0.25"]).unwrap();
        let NetworkModel::Events(cfg) = a.network().unwrap() else {
            panic!("events expected");
        };
        assert_eq!(
            cfg.reachability,
            Reachability::Nat {
                fraction: 0.25,
                hole_ttl: 3
            }
        );
        for (key, bad) in [
            ("partition", "10..25"),
            ("partition", "25..10@75"),
            ("partition", "10..25@many"),
            ("nat", "1.5"),
            ("nat", "0.4:0"),
            ("nat", "porous"),
        ] {
            let a = args(&["run", "--network", "events", &format!("--{key}"), bad]).unwrap();
            assert!(
                matches!(
                    a.network().unwrap_err(),
                    CliError::BadValue { key: ref k, .. } if k == key
                ),
                "--{key} {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn retry_and_injector_flags_parse() {
        let cfg = |extra: &[&str]| {
            let mut v = vec!["run", "--network", "events"];
            v.extend_from_slice(extra);
            match args(&v).unwrap().network() {
                Ok(NetworkModel::Events(cfg)) => Ok(cfg),
                Ok(NetworkModel::Rounds) => unreachable!(),
                Err(e) => Err(e),
            }
        };
        let c = cfg(&["--retry", "3:500", "--duplicate", "0.2", "--reorder", "40"]).unwrap();
        assert_eq!(
            c.retry,
            RetryConfig {
                max_retries: 3,
                base_backoff: 500
            }
        );
        assert_eq!(c.duplicate_rate, 0.2);
        assert_eq!(c.reorder_jitter, 40);
        assert_eq!(
            cfg(&["--retry", "2"]).unwrap().retry,
            RetryConfig {
                max_retries: 2,
                base_backoff: 250
            },
            "backoff base defaults to 250 ticks"
        );
        for (key, bad) in [
            ("retry", "many"),
            ("retry", "3:slow"),
            ("retry", "3:0"),
            ("duplicate", "1.5"),
            ("duplicate", "often"),
            ("reorder", "-4"),
        ] {
            assert!(
                matches!(
                    cfg(&[&format!("--{key}"), bad]).unwrap_err(),
                    CliError::BadValue { key: ref k, .. } if k == key
                ),
                "--{key} {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn churn_flags_parse() {
        let s = args(&["run", "--churn", "0.02"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(s.churn, ChurnSchedule::steady(0.02, 0.0));
        let s = args(&["run", "--churn", "0.02:0.4", "--rejoin", "warm"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(s.churn.crash_rate, 0.02);
        assert_eq!(s.churn.restart_rate, 0.4);
        assert_eq!(s.churn.rejoin, RejoinPolicy::Warm);
        s.validate();
        let s = args(&["run", "--catastrophe", "20..25@0.4; 40..42@0.6"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(
            s.churn.bursts,
            vec![
                ChurnBurst {
                    start: 20,
                    end: 25,
                    crash_rate: 0.4
                },
                ChurnBurst {
                    start: 40,
                    end: 42,
                    crash_rate: 0.6
                },
            ]
        );
        for (key, bad) in [
            ("churn", "lots"),
            ("churn", "1.5"),
            ("churn", "0.02:2.0"),
            ("catastrophe", "20..25"),
            ("catastrophe", "25..20@0.4"),
            ("catastrophe", "20..25@1.5"),
            ("rejoin", "lukewarm"),
        ] {
            let mut v = vec!["run"];
            // --rejoin needs a churn process before its value is even
            // inspected.
            let churn_arg;
            if key == "rejoin" {
                churn_arg = "--churn".to_string();
                v.extend_from_slice(&[&churn_arg, "0.02:0.4"]);
            }
            let flag = format!("--{key}");
            v.extend_from_slice(&[&flag, bad]);
            let err = args(&v).unwrap().scenario().unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { key: ref k, .. } if k == key),
                "--{key} {bad:?} must be rejected, got {err:?}"
            );
        }
        // --rejoin without any restart process is meaningless.
        let err = args(&["run", "--rejoin", "warm"])
            .unwrap()
            .scenario()
            .unwrap_err();
        assert!(matches!(err, CliError::BadValue { ref key, .. } if key == "rejoin"));
    }

    #[test]
    fn attest_ttl_requires_a_trusted_tier() {
        let s = args(&["run", "--attest-ttl", "40", "--t", "0.1"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(s.attest_ttl, 40);
        s.validate();
        for extra in [
            vec!["--attest-ttl", "40", "--t", "0"],
            vec!["--attest-ttl", "40", "--protocol", "basalt"],
        ] {
            let mut v = vec!["run"];
            v.extend_from_slice(&extra);
            let err = args(&v).unwrap().scenario().unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { ref key, .. } if key == "attest-ttl"),
                "{extra:?} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn audit_flag_parses_and_gates() {
        // budget only → default grace.
        let s = args(&["run", "--audit", "4", "--t", "0.1"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(
            s.audit,
            Some(AuditConfig {
                budget: 4,
                grace: DEFAULT_AUDIT_GRACE
            })
        );
        s.validate();
        // budget:grace spelled out, compatible with an attestation TTL.
        let s = args(&["run", "--audit", "6:8", "--t", "0.1", "--attest-ttl", "20"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(
            s.audit,
            Some(AuditConfig {
                budget: 6,
                grace: 8
            })
        );
        s.validate();
        // Gating: no trusted tier, a trusted-incapable protocol, an
        // attestation TTL shorter than the grace window, and malformed
        // or zero-valued specs are all CLI errors, not library asserts.
        for extra in [
            vec!["--audit", "4", "--t", "0"],
            vec!["--audit", "4", "--protocol", "basalt"],
            vec!["--audit", "4", "--protocol", "brahms"],
            vec!["--audit", "6:8", "--t", "0.1", "--attest-ttl", "5"],
            vec!["--audit", "0", "--t", "0.1"],
            vec!["--audit", "4:0", "--t", "0.1"],
            vec!["--audit", "many", "--t", "0.1"],
        ] {
            let mut v = vec!["run"];
            v.extend_from_slice(&extra);
            let err = args(&v).unwrap().scenario().unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { ref key, .. } if key == "audit"),
                "{extra:?} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn audit_run_reports_audit_metrics() {
        let a = args(&[
            "run", "--n", "80", "--rounds", "30", "--view", "10", "--t", "0.1", "--audit", "4",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("audit (budget 4, grace 10):"), "{out}");
        assert!(out.contains("false accusations 0.0"), "{out}");
        // Audit-off runs stay silent about the challenger.
        let a = args(&["run", "--n", "80", "--rounds", "30", "--view", "10"]).unwrap();
        let out = execute(&a).unwrap();
        assert!(!out.contains("audit ("), "{out}");
    }

    #[test]
    fn churn_run_reports_recovery_metrics() {
        let a = args(&[
            "run", "--n", "80", "--rounds", "30", "--view", "10", "--t", "0.1", "--churn",
            "0.03:0.5",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("availability:"), "{out}");
        // The quiet run stays silent about recovery.
        let a = args(&["run", "--n", "80", "--rounds", "30", "--view", "10"]).unwrap();
        let out = execute(&a).unwrap();
        assert!(!out.contains("availability:"), "{out}");
    }

    #[test]
    fn shaping_flags_require_the_event_network() {
        for (key, value) in [
            ("latency", "const:100"),
            ("round-ticks", "500"),
            ("jitter", "100"),
            ("partition", "1..5@10"),
            ("nat", "0.4"),
            ("retry", "3:500"),
            ("duplicate", "0.1"),
            ("reorder", "40"),
        ] {
            let a = args(&["run", &format!("--{key}"), value]).unwrap();
            assert!(
                matches!(
                    a.network().unwrap_err(),
                    CliError::BadValue { key: ref k, .. } if k == key
                ),
                "--{key} without --network events must be rejected"
            );
        }
    }

    #[test]
    fn execute_event_network_run() {
        let a = args(&[
            "run",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
            "--t",
            "0.1",
            "--network",
            "events",
            "--latency",
            "lognormal:5.5,0.8,3000",
            "--jitter",
            "150",
            "--partition",
            "5..10@40",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("network=events"), "{out}");
        assert!(out.contains("resilience:"), "{out}");
        // And the round model still reports as such.
        let a = args(&["run", "--n", "80", "--rounds", "20", "--view", "10"]).unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("network=rounds"), "{out}");
    }

    #[test]
    fn series_flag() {
        let a = args(&[
            "run", "--n", "60", "--rounds", "10", "--view", "8", "--series", "true",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("round,byzantine_share"));
        assert!(out.lines().count() > 10);
    }
}
