//! Argument parsing and command execution for the `raptee-cli` binary.
//!
//! Dependency-free by design (no clap offline): a small hand-rolled
//! `--key value` parser with typed accessors, unit-tested separately
//! from I/O.
//!
//! ```text
//! raptee-cli run    [--n 400] [--f 0.2] [--t 0.1] [--eviction adaptive]
//!                   [--view 16] [--rounds 200] [--seed 7] [--protocol raptee]
//!                   [--scale million] [--discovery sketch] [--reps 1] [--series]
//! raptee-cli sweep  [--eviction adaptive] [--reps 2] ...
//! raptee-cli ident  [--f 0.1] [--eviction 0.6] ...
//! raptee-cli inject [--t 0.01] [--injected 0.05] ...
//! ```

use raptee::EvictionPolicy;
use raptee_bench::Scale;
use raptee_sim::{runner, DiscoveryMode, Protocol, Scenario, SegmentSpec};
use std::collections::BTreeMap;

/// A parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
}

/// Parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--key` had no value.
    MissingValue(String),
    /// A positional argument appeared where an option was expected.
    UnexpectedArgument(String),
    /// A value failed to parse for its option.
    BadValue {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
    },
    /// Unknown subcommand.
    UnknownCommand(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand (run|sweep|ident|inject)"),
            CliError::MissingValue(k) => write!(f, "option --{k} expects a value"),
            CliError::UnexpectedArgument(a) => write!(f, "unexpected argument {a:?}"),
            CliError::BadValue { key, value } => {
                write!(f, "invalid value {value:?} for --{key}")
            }
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] when the grammar is violated.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
        let mut iter = raw.into_iter();
        let command = iter.next().ok_or(CliError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(CliError::MissingCommand);
        }
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::UnexpectedArgument(arg.clone()))?
                .to_string();
            let value = iter
                .next()
                .ok_or_else(|| CliError::MissingValue(key.clone()))?;
            options.insert(key, value);
        }
        Ok(Args { command, options })
    }

    /// Typed option accessor with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] when present but unparsable.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                key: key.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// Whether a boolean flag (`--series true` / presence with any value
    /// other than "false") is set.
    pub fn flag(&self, key: &str) -> bool {
        match self.options.get(key) {
            None => false,
            Some(v) => v != "false" && v != "0",
        }
    }

    /// Parses the `--eviction` option: `none`, `adaptive`, or a fixed
    /// rate like `0.6`.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on anything else.
    pub fn eviction(&self) -> Result<EvictionPolicy, CliError> {
        match self.options.get("eviction").map(String::as_str) {
            None | Some("adaptive") => Ok(EvictionPolicy::adaptive()),
            Some("none") => Ok(EvictionPolicy::none()),
            Some(v) => match v.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => Ok(EvictionPolicy::Fixed(r)),
                _ => Err(CliError::BadValue {
                    key: "eviction".into(),
                    value: v.into(),
                }),
            },
        }
    }

    /// Parses the `--protocol` option (`raptee` default, `brahms`,
    /// `basalt`, or `basalt-tee`). The BASALT family reads `--rotation`
    /// for its seed-rotation interval and runs `view_size` ranked slots;
    /// the BASALT+TEE hybrid additionally reads `--wlist-ttl` (rounds of
    /// hearsay quarantine, default 10) and takes its trusted tier from
    /// `--t`.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on anything else.
    pub fn protocol(&self, view_size: usize) -> Result<Protocol, CliError> {
        self.named_protocol(
            self.options
                .get("protocol")
                .map_or("raptee", String::as_str),
            view_size,
        )
    }

    /// Resolves one protocol name (shared by `--protocol` and the
    /// `--population` entries).
    fn named_protocol(&self, name: &str, view_size: usize) -> Result<Protocol, CliError> {
        match name {
            "raptee" => Ok(Protocol::Raptee),
            "brahms" => Ok(Protocol::Brahms),
            "basalt" => Ok(Protocol::Basalt {
                view_size,
                rotation_interval: self.get("rotation", 30usize)?,
            }),
            "basalt-tee" => Ok(Protocol::BasaltTee {
                view_size,
                rotation_interval: self.get("rotation", 30usize)?,
                wlist_ttl: self.get("wlist-ttl", 10usize)?,
            }),
            v => Err(CliError::BadValue {
                key: "protocol".into(),
                value: v.into(),
            }),
        }
    }

    /// Parses the `--population` option: a comma-separated list of
    /// `protocol:count` (absolute correct-node counts) or
    /// `protocol:share%` (percent of the correct population; the
    /// remainder after all percent segments lands in the last one)
    /// entries, e.g. `raptee:50%,basalt-tee:50%`.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] when an entry fails to parse.
    pub fn population(
        &self,
        view_size: usize,
        correct: usize,
    ) -> Result<Vec<SegmentSpec>, CliError> {
        let Some(spec) = self.options.get("population") else {
            return Ok(Vec::new());
        };
        let bad = |value: &str| CliError::BadValue {
            key: "population".into(),
            value: value.into(),
        };
        let mut segments = Vec::new();
        let mut allocated = 0usize;
        let mut percent_sum = 0.0f64;
        let mut all_percent = true;
        let entries: Vec<&str> = spec.split(',').collect();
        for entry in &entries {
            let (name, amount) = entry.split_once(':').ok_or_else(|| bad(entry))?;
            let protocol = self
                .named_protocol(name.trim(), view_size)
                .map_err(|_| bad(entry))?;
            let amount = amount.trim();
            let count = if let Some(pct) = amount.strip_suffix('%') {
                let pct: f64 = pct.trim().parse().map_err(|_| bad(entry))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(bad(entry));
                }
                percent_sum += pct;
                (correct as f64 * pct / 100.0).round() as usize
            } else {
                all_percent = false;
                amount.parse().map_err(|_| bad(entry))?
            };
            allocated += count;
            segments.push(SegmentSpec { protocol, count });
        }
        if all_percent {
            // Percent shares must cover the whole correct population —
            // a mistyped share errors instead of being silently
            // reinterpreted. Only *rounding* slack is absorbed, into the
            // final segment.
            if (percent_sum - 100.0).abs() > 1e-9 {
                return Err(bad(&format!(
                    "{spec} (shares sum to {percent_sum}%, need 100%)"
                )));
            }
            if let Some(last) = segments.last_mut() {
                let others = allocated - last.count;
                last.count = correct.saturating_sub(others);
                allocated = correct;
            }
        }
        if allocated != correct {
            return Err(bad(&format!(
                "{spec} (counts sum to {allocated}, but the correct population is {correct})"
            )));
        }
        Ok(segments)
    }

    /// Parses the `--scale` option: a named profile from the bench
    /// harness (`tiny|small|medium|paper|million`) whose N/view/rounds
    /// become the scenario defaults; explicit `--n`/`--view`/`--rounds`
    /// still win.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on an unknown profile name.
    pub fn scale(&self) -> Result<Option<Scale>, CliError> {
        match self.options.get("scale") {
            None => Ok(None),
            Some(name) => Scale::named(name)
                .map(Some)
                .ok_or_else(|| CliError::BadValue {
                    key: "scale".into(),
                    value: name.clone(),
                }),
        }
    }

    /// Parses the `--discovery` option (`auto` default, `exact`,
    /// `sketch`): how the system-discovery metric is tracked. `auto`
    /// picks exact bitsets up to the crossover population and HLL
    /// sketches above it.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] on anything else.
    pub fn discovery(&self) -> Result<DiscoveryMode, CliError> {
        match self.options.get("discovery").map(String::as_str) {
            None | Some("auto") => Ok(DiscoveryMode::Auto),
            Some("exact") => Ok(DiscoveryMode::Exact),
            Some("sketch") => Ok(DiscoveryMode::Sketch),
            Some(v) => Err(CliError::BadValue {
                key: "discovery".into(),
                value: v.into(),
            }),
        }
    }

    /// Builds the scenario common to all subcommands.
    ///
    /// # Errors
    ///
    /// Propagates option-parsing failures.
    pub fn scenario(&self) -> Result<Scenario, CliError> {
        let scale = self.scale()?;
        let (n_default, view_default, rounds_default) =
            scale.map_or((400, 16, 200), |s| (s.n, s.view, s.rounds));
        let view = self.get("view", view_default)?;
        let rounds = self.get("rounds", rounds_default)?;
        // `--t` is ignored under `--protocol basalt` (no trusted tier
        // exists); an explicit `--injected` under BASALT is rejected by
        // `Scenario::validate` when the simulation starts.
        let mut scenario = Scenario {
            n: self.get("n", n_default)?,
            byzantine_fraction: self.get("f", 0.10f64)?,
            trusted_fraction: self.get("t", 0.01f64)?,
            injected_poisoned_fraction: self.get("injected", 0.0f64)?,
            eviction: self.eviction()?,
            view_size: view,
            sample_size: view,
            rounds,
            tail_window: (rounds / 10).max(5),
            protocol: self.protocol(view)?,
            discovery: self.discovery()?,
            seed: self.get("seed", 0x5A97EE_u64)?,
            ..Scenario::default()
        };
        let correct = scenario.n - scenario.byzantine_count();
        scenario.population = self.population(view, correct)?;
        Ok(scenario)
    }
}

/// The usage string printed on error or `help`.
pub const USAGE: &str = "raptee-cli — drive the RAPTEE reproduction from the command line

USAGE:
    raptee-cli <run|sweep|ident|inject|help> [--key value]...

COMMON OPTIONS:
    --n <usize>        population size            [default: 400]
    --f <f64>          Byzantine fraction         [default: 0.10]
    --t <f64>          trusted fraction           [default: 0.01]
    --view <usize>     view/sample size           [default: 16]
    --rounds <usize>   rounds per run             [default: 200]
    --scale <name>     tiny | small | medium | paper | million — preset
                       n/view/rounds defaults (explicit flags still win)
    --discovery <m>    auto | exact | sketch      [default: auto]
                       auto = exact bitsets up to 16384 actors, HLL
                       cardinality sketches (~6.5% std error) above
    --seed <u64>       master seed
    --reps <usize>     repetitions                [default: 1]
    --eviction <p>     none | adaptive | 0.0..1.0 [default: adaptive]
    --protocol <p>     raptee | brahms | basalt | basalt-tee [default: raptee]
    --rotation <usize> BASALT seed-rotation interval in rounds [default: 30]
    --wlist-ttl <usize> basalt-tee hearsay-quarantine TTL in rounds [default: 10]
    --population <s>   mixed population: comma-separated protocol:count or
                       protocol:share% entries over the correct nodes,
                       e.g. raptee:50%,basalt-tee:50% (overrides --protocol;
                       per-segment pollution is reported alongside the total)

SUBCOMMANDS:
    run      one scenario; add --series true to dump the pollution curve as CSV
    sweep    f × t grid vs the Brahms baseline (fig 5-9 shape)
    ident    trusted-node identification attack (fig 10-12 shape)
    inject   view-poisoned trusted node injection (fig 13 shape); --injected <f64>
";

/// Executes a parsed command; returns the text to print.
///
/// # Errors
///
/// Returns usage/validation errors as [`CliError`].
pub fn execute(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" => Ok(USAGE.to_string()),
        "run" => cmd_run(args),
        "sweep" => cmd_sweep(args),
        "ident" => cmd_ident(args),
        "inject" => cmd_inject(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let scenario = args.scenario()?;
    let reps = args.get("reps", 1usize)?;
    let agg = runner::run_repeated(&scenario, reps);
    let mut out = String::new();
    let population = if scenario.population.is_empty() {
        format!("protocol={}", scenario.protocol.label())
    } else {
        let parts: Vec<String> = scenario
            .population
            .iter()
            .map(|s| format!("{}:{}", s.protocol.label(), s.count))
            .collect();
        format!("population={}", parts.join(","))
    };
    out.push_str(&format!(
        "{population} n={} f={:.0}% t={:.0}% eviction={} rounds={} reps={reps} discovery={}\n",
        scenario.n,
        scenario.byzantine_fraction * 100.0,
        // The *effective* trusted share: 0 under Brahms/BASALT even when
        // a --t default or flag is present.
        scenario.trusted_count() as f64 / scenario.n as f64 * 100.0,
        scenario.eviction.label(),
        scenario.rounds,
        if scenario.sketch_discovery() {
            "sketch"
        } else {
            "exact"
        },
    ));
    out.push_str(&format!(
        "resilience: {:.2}% Byzantine IDs in non-Byzantine views\n",
        agg.resilience * 100.0
    ));
    if agg.segments.len() > 1 {
        for seg in &agg.segments {
            out.push_str(&format!(
                "  segment {:10} ({} nodes): {:.2}%   discovery {}   stability {}\n",
                seg.protocol.label(),
                seg.nodes,
                seg.resilience * 100.0,
                seg.discovery_round
                    .map_or("-".into(), |r| format!("{r:.1}")),
                seg.stability_round
                    .map_or("-".into(), |r| format!("{r:.1}")),
            ));
        }
    }
    out.push_str(&format!(
        "discovery round: {}   stability round: {}\n",
        agg.discovery_round
            .map_or("-".into(), |r| format!("{r:.1}")),
        agg.stability_round
            .map_or("-".into(), |r| format!("{r:.1}")),
    ));
    if args.flag("series") {
        let run = runner::run_scenario(scenario);
        out.push_str("round,byzantine_share\n");
        for (i, v) in run.byz_share_series.iter().enumerate() {
            out.push_str(&format!("{i},{v:.4}\n"));
        }
    }
    Ok(out)
}

fn cmd_sweep(args: &Args) -> Result<String, CliError> {
    let template = args.scenario()?;
    let reps = args.get("reps", 1usize)?;
    let fs = [0.10, 0.14, 0.18, 0.22, 0.26, 0.30];
    let ts = [0.01, 0.05, 0.10, 0.20, 0.30, 0.50];
    let sweep = runner::sweep_grid(&template, &fs, &ts, reps);
    let mut out = String::from("f,t,improvement_pct,resilience,baseline\n");
    for (f, t, result) in &sweep.grid {
        let base = sweep.baseline(*f).expect("baseline per f");
        out.push_str(&format!(
            "{f:.2},{t:.2},{:.2},{:.4},{:.4}\n",
            runner::resilience_improvement_pct(base, result),
            result.resilience,
            base.resilience,
        ));
    }
    Ok(out)
}

/// Rejects the BASALT family and mixed populations for the
/// uniform-RAPTEE-only attack subcommands with the CLI's usual error
/// path (rather than the library assert).
fn require_trusted_tier(scenario: &Scenario) -> Result<(), CliError> {
    if !scenario.population.is_empty() {
        return Err(CliError::BadValue {
            key: "population".into(),
            value: "mixed populations (this attack needs a uniform RAPTEE run)".into(),
        });
    }
    if scenario.protocol.is_basalt_family() {
        return Err(CliError::BadValue {
            key: "protocol".into(),
            value: format!(
                "{} (this attack needs the uniform RAPTEE protocol)",
                scenario.protocol.label()
            ),
        });
    }
    Ok(())
}

fn cmd_ident(args: &Args) -> Result<String, CliError> {
    let mut scenario = args.scenario()?;
    require_trusted_tier(&scenario)?;
    scenario.identification_attack = true;
    let reps = args.get("reps", 1usize)?;
    let agg = runner::run_repeated(&scenario, reps);
    Ok(format!(
        "identification attack (f={:.0}%, t={:.0}%, {}):\nprecision={:.3} recall={:.3} f1={:.3}\n",
        scenario.byzantine_fraction * 100.0,
        scenario.trusted_fraction * 100.0,
        scenario.eviction.label(),
        agg.ident_precision,
        agg.ident_recall,
        agg.ident_f1,
    ))
}

fn cmd_inject(args: &Args) -> Result<String, CliError> {
    let scenario = args.scenario()?;
    require_trusted_tier(&scenario)?;
    let reps = args.get("reps", 1usize)?;
    let baseline = runner::run_repeated(&scenario.brahms_baseline(), reps);
    let clean = runner::run_repeated(
        &Scenario {
            injected_poisoned_fraction: 0.0,
            ..scenario.clone()
        },
        reps,
    );
    let attacked = runner::run_repeated(&scenario, reps);
    Ok(format!(
        "injection attack (t={:.0}%, +{:.0}% poisoned):\n\
         clean improvement:    {:.2}%\n\
         attacked improvement: {:.2}%\n",
        scenario.trusted_fraction * 100.0,
        scenario.injected_poisoned_fraction * 100.0,
        runner::resilience_improvement_pct(&baseline, &clean),
        runner::resilience_improvement_pct(&baseline, &attacked),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, CliError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = args(&["run", "--n", "100", "--f", "0.2"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("n", 0usize).unwrap(), 100);
        assert_eq!(a.get("f", 0.0f64).unwrap(), 0.2);
        assert_eq!(a.get("rounds", 200usize).unwrap(), 200, "default applies");
    }

    #[test]
    fn rejects_bad_grammar() {
        assert_eq!(args(&[]).unwrap_err(), CliError::MissingCommand);
        assert_eq!(args(&["--n", "5"]).unwrap_err(), CliError::MissingCommand);
        assert_eq!(
            args(&["run", "--n"]).unwrap_err(),
            CliError::MissingValue("n".into())
        );
        assert_eq!(
            args(&["run", "stray"]).unwrap_err(),
            CliError::UnexpectedArgument("stray".into())
        );
    }

    #[test]
    fn rejects_bad_values() {
        let a = args(&["run", "--n", "lots"]).unwrap();
        assert!(matches!(a.get("n", 0usize), Err(CliError::BadValue { .. })));
        let a = args(&["run", "--eviction", "1.5"]).unwrap();
        assert!(a.eviction().is_err());
        let a = args(&["run", "--protocol", "bitcoin"]).unwrap();
        assert!(a.protocol(16).is_err());
    }

    #[test]
    fn eviction_forms() {
        assert_eq!(
            args(&["run"]).unwrap().eviction().unwrap(),
            EvictionPolicy::adaptive()
        );
        assert_eq!(
            args(&["run", "--eviction", "none"])
                .unwrap()
                .eviction()
                .unwrap(),
            EvictionPolicy::Fixed(0.0)
        );
        assert_eq!(
            args(&["run", "--eviction", "0.4"])
                .unwrap()
                .eviction()
                .unwrap(),
            EvictionPolicy::Fixed(0.4)
        );
    }

    #[test]
    fn scenario_construction() {
        let a = args(&["run", "--n", "120", "--f", "0.3", "--rounds", "50"]).unwrap();
        let s = a.scenario().unwrap();
        assert_eq!(s.n, 120);
        assert_eq!(s.byzantine_fraction, 0.3);
        assert_eq!(s.rounds, 50);
        s.validate();
    }

    #[test]
    fn scale_presets_apply_and_yield_to_explicit_flags() {
        let s = args(&["run", "--scale", "tiny"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!((s.n, s.view_size, s.rounds), (150, 12, 250));
        let s = args(&["run", "--scale", "tiny", "--n", "99", "--rounds", "40"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!((s.n, s.view_size, s.rounds), (99, 12, 40));
        let s = args(&["run", "--scale", "million"])
            .unwrap()
            .scenario()
            .unwrap();
        assert_eq!(s.n, 1_000_000);
        assert!(s.sketch_discovery(), "million auto-selects sketches");
        let err = args(&["run", "--scale", "galactic"])
            .unwrap()
            .scenario()
            .unwrap_err();
        assert!(matches!(err, CliError::BadValue { ref key, .. } if key == "scale"));
    }

    #[test]
    fn discovery_modes_parse() {
        let a = args(&["run"]).unwrap();
        assert_eq!(a.discovery().unwrap(), DiscoveryMode::Auto);
        let a = args(&["run", "--discovery", "exact"]).unwrap();
        assert_eq!(a.discovery().unwrap(), DiscoveryMode::Exact);
        let a = args(&["run", "--discovery", "sketch"]).unwrap();
        assert_eq!(a.discovery().unwrap(), DiscoveryMode::Sketch);
        assert!(a.scenario().unwrap().sketch_discovery());
        let a = args(&["run", "--discovery", "psychic"]).unwrap();
        assert!(matches!(
            a.discovery().unwrap_err(),
            CliError::BadValue { ref key, .. } if key == "discovery"
        ));
    }

    #[test]
    fn run_reports_discovery_mode() {
        let a = args(&[
            "run",
            "--n",
            "60",
            "--rounds",
            "10",
            "--view",
            "8",
            "--discovery",
            "sketch",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("discovery=sketch"), "{out}");
        let a = args(&["run", "--n", "60", "--rounds", "10", "--view", "8"]).unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("discovery=exact"), "{out}");
    }

    #[test]
    fn execute_help_and_unknown() {
        let help = execute(&args(&["help"]).unwrap()).unwrap();
        assert!(help.contains("USAGE"));
        assert_eq!(
            execute(&args(&["frobnicate"]).unwrap()).unwrap_err(),
            CliError::UnknownCommand("frobnicate".into())
        );
    }

    #[test]
    fn execute_small_run() {
        let a = args(&[
            "run", "--n", "80", "--rounds", "20", "--view", "10", "--t", "0.1",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
    }

    #[test]
    fn execute_small_ident() {
        let a = args(&[
            "ident", "--n", "80", "--rounds", "20", "--view", "10", "--t", "0.2",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("precision="), "{out}");
    }

    #[test]
    fn basalt_protocol_parses_and_runs() {
        let a = args(&["run", "--protocol", "basalt", "--rotation", "10"]).unwrap();
        assert_eq!(
            a.protocol(16).unwrap(),
            Protocol::Basalt {
                view_size: 16,
                rotation_interval: 10
            }
        );
        let s = a.scenario().unwrap();
        assert_eq!(s.trusted_count(), 0, "BASALT runs no trusted tier");
        s.validate();
        let a = args(&[
            "run",
            "--protocol",
            "basalt",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
        assert!(
            out.contains("t=0%"),
            "no trusted tier must be reported: {out}"
        );
    }

    #[test]
    fn attack_subcommands_reject_basalt_cleanly() {
        for cmd in ["ident", "inject"] {
            for protocol in ["basalt", "basalt-tee"] {
                let a =
                    args(&[cmd, "--protocol", protocol, "--n", "80", "--rounds", "10"]).unwrap();
                let err = execute(&a).unwrap_err();
                assert!(
                    matches!(err, CliError::BadValue { ref key, .. } if key == "protocol"),
                    "{cmd}/{protocol} must fail with the CLI error path, got {err:?}"
                );
            }
            let a = args(&[
                cmd,
                "--population",
                "raptee:50%,brahms:50%",
                "--n",
                "80",
                "--rounds",
                "10",
            ])
            .unwrap();
            let err = execute(&a).unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { ref key, .. } if key == "population"),
                "{cmd} must reject mixed populations, got {err:?}"
            );
        }
    }

    #[test]
    fn basalt_tee_protocol_parses_and_runs() {
        let a = args(&[
            "run",
            "--protocol",
            "basalt-tee",
            "--rotation",
            "12",
            "--wlist-ttl",
            "6",
            "--t",
            "0.1",
            "--n",
            "80",
            "--rounds",
            "20",
            "--view",
            "10",
        ])
        .unwrap();
        assert_eq!(
            a.protocol(10).unwrap(),
            Protocol::BasaltTee {
                view_size: 10,
                rotation_interval: 12,
                wlist_ttl: 6
            }
        );
        let s = a.scenario().unwrap();
        s.validate();
        assert_eq!(s.trusted_count(), 8, "the hybrid keeps its trusted tier");
        let out = execute(&a).unwrap();
        assert!(out.contains("resilience:"), "{out}");
        assert!(out.contains("t=10%"), "{out}");
    }

    #[test]
    fn population_option_parses_counts_and_percents() {
        let a = args(&[
            "run",
            "--n",
            "100",
            "--population",
            "raptee:45,basalt-tee:45",
        ])
        .unwrap();
        let s = a.scenario().unwrap();
        s.validate();
        assert_eq!(s.population.len(), 2);
        assert_eq!(s.population[0].count, 45);

        let a = args(&[
            "run",
            "--n",
            "100",
            "--population",
            "raptee:50%,basalt-tee:50%",
        ])
        .unwrap();
        let s = a.scenario().unwrap();
        s.validate();
        // 90 correct nodes: 45 + the remainder-absorbing last segment.
        assert_eq!(s.population[0].count + s.population[1].count, 90);
    }

    #[test]
    fn population_run_reports_segments() {
        let a = args(&[
            "run",
            "--n",
            "80",
            "--rounds",
            "15",
            "--view",
            "10",
            "--t",
            "0.1",
            "--population",
            "raptee:50%,basalt-tee:50%",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("population=raptee:"), "{out}");
        assert!(out.contains("segment raptee"), "{out}");
        assert!(out.contains("segment basalt-tee"), "{out}");
        for line in out.lines().filter(|l| l.contains("segment ")) {
            assert!(
                line.contains("discovery ") && line.contains("stability "),
                "per-segment rounds must be reported: {line}"
            );
        }
    }

    #[test]
    fn population_bad_entries_rejected() {
        for spec in [
            "raptee",
            "raptee:many",
            "bitcoin:40",
            "raptee:140%",
            // Mistyped shares must error, not be silently reinterpreted.
            "raptee:30%,basalt-tee:20%",
            // Absolute counts that miss the correct population must take
            // the CLI error path, not a library assert.
            "raptee:10,basalt-tee:10",
        ] {
            let a = args(&["run", "--population", spec]).unwrap();
            let err = a.scenario().unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { ref key, .. } if key == "population"),
                "{spec:?} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn series_flag() {
        let a = args(&[
            "run", "--n", "60", "--rounds", "10", "--view", "8", "--series", "true",
        ])
        .unwrap();
        let out = execute(&a).unwrap();
        assert!(out.contains("round,byzantine_share"));
        assert!(out.lines().count() > 10);
    }
}
