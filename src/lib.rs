//! Root meta-crate for the RAPTEE reproduction workspace.
//!
//! Re-exports the member crates for convenient one-import use, hosts the
//! cross-crate integration tests (`tests/`), the runnable examples
//! (`examples/`), and the [`cli`] argument parser backing the
//! `raptee-cli` binary.

pub use raptee;
pub use raptee_basalt;
pub use raptee_brahms;
pub use raptee_crypto;
pub use raptee_gossip;
pub use raptee_net;
pub use raptee_sampler;
pub use raptee_sim;
pub use raptee_sps;
pub use raptee_tee;
pub use raptee_util;

pub mod cli;
