//! Command-line driver for the RAPTEE reproduction.
//!
//! See `raptee-cli help` (or [`raptee_repro::cli::USAGE`]) for usage.

use raptee_repro::cli::{execute, Args, USAGE};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match execute(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
