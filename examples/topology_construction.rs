//! Overlay construction on top of the peer-sampling service.
//!
//! The paper's introduction motivates peer sampling as the substrate of
//! "distributed unstructured overlay management" (T-Man, Vicinity): each
//! node greedily keeps the neighbours that best match a target topology,
//! using the peer-sampling stream as its source of fresh candidates. If
//! the stream is biased towards the adversary, the structured overlay is
//! built out of Byzantine nodes.
//!
//! This example builds a *ring* over the node-ID space (T-Man's classic
//! demo): every correct node keeps the k closest IDs (cyclic distance)
//! it has ever sampled, refreshed from the converged sample lists of
//! either Brahms or RAPTEE under a 25 % adversary. We measure how many
//! of the final ring neighbours are Byzantine.
//!
//! Run with `cargo run --release --example topology_construction`.

use raptee_net::NodeId;
use raptee_sim::{Protocol, Scenario, Simulation};

const NEIGHBOURS: usize = 4;

/// Cyclic distance over the ID space.
fn ring_distance(a: u64, b: u64, n: u64) -> u64 {
    let d = a.abs_diff(b);
    d.min(n - d)
}

fn build_ring(label: &str, scenario: &Scenario) {
    let byz = scenario.byzantine_count();
    let mut sim = Simulation::new(scenario.clone());
    for _ in 0..scenario.rounds {
        sim.run_round();
    }
    // Each correct node selects its NEIGHBOURS closest sampled IDs.
    let mut byz_neighbours = 0usize;
    let mut total_neighbours = 0usize;
    let mut perfect = 0usize;
    for i in byz..scenario.n {
        let node = sim.node(NodeId(i as u64)).unwrap();
        let mut candidates: Vec<NodeId> = node.brahms().sampler().samples();
        candidates.extend(node.brahms().view().ids());
        candidates.sort_unstable();
        candidates.dedup();
        candidates.sort_by_key(|c| ring_distance(i as u64, c.0, scenario.n as u64));
        let chosen: Vec<NodeId> = candidates.into_iter().take(NEIGHBOURS).collect();
        let byz_here = chosen.iter().filter(|c| c.index() < byz).count();
        byz_neighbours += byz_here;
        total_neighbours += chosen.len();
        // "Perfect" = both immediate ring successors/predecessors found
        // among the correct population (ignoring gaps left by Byzantine
        // positions).
        if byz_here == 0 && chosen.len() == NEIGHBOURS {
            perfect += 1;
        }
    }
    println!(
        "{label:<8}  Byzantine ring neighbours: {:>5.1}%   nodes with a fully honest neighbourhood: {:>5.1}%",
        byz_neighbours as f64 / total_neighbours as f64 * 100.0,
        perfect as f64 / (scenario.n - byz) as f64 * 100.0
    );
}

fn main() {
    println!("T-Man-style ring construction from the sampling stream, f = 25%, k = {NEIGHBOURS}\n");
    let base = Scenario {
        n: 400,
        byzantine_fraction: 0.25,
        trusted_fraction: 0.10,
        view_size: 16,
        sample_size: 16,
        rounds: 120,
        seed: 5150,
        ..Scenario::default()
    };
    build_ring(
        "Brahms",
        &Scenario {
            protocol: Protocol::Brahms,
            ..base.clone()
        },
    );
    build_ring("RAPTEE", &base);
    println!(
        "\nA less-biased sampling stream directly translates into a cleaner\n\
         structured overlay: fewer Byzantine nodes capture ring positions."
    );
}
