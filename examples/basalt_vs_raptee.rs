//! BASALT vs RAPTEE: two answers to the same Byzantine adversary.
//!
//! Run with:
//! ```text
//! cargo run --release --example basalt_vs_raptee
//! ```
//!
//! RAPTEE hardens Brahms with a small tier of SGX-backed trusted nodes;
//! BASALT (Auvolat et al.) resists the same balanced and targeted
//! attacks purely algorithmically with ranked hit-counter views and seed
//! rotation. This example first pokes the BASALT node API directly, then
//! runs the same 200-node population under Brahms, RAPTEE and BASALT and
//! compares converged pollution.

use raptee_basalt::{BasaltConfig, BasaltNode};
use raptee_net::NodeId;
use raptee_sim::{run_scenario, Protocol, Scenario};

fn main() {
    // --- 1. The node-level API ------------------------------------------
    let cfg = BasaltConfig::for_view(10, 5);
    let bootstrap: Vec<NodeId> = (1..=30).map(NodeId).collect();
    let mut node = BasaltNode::new(NodeId(0), cfg, &bootstrap, 42);
    println!(
        "BASALT node {} holds {} ranked slots over a {}-peer bootstrap",
        node.id(),
        node.view().capacity(),
        bootstrap.len()
    );
    println!("initial samples: {:?}", node.view().distinct_ids());

    // An attacker floods one ID ten thousand times: hit counters move,
    // the view does not.
    let before = node.view().sample_ids();
    for _ in 0..10_000 {
        node.record_push(NodeId(999));
    }
    let captured = node
        .view()
        .sample_ids()
        .iter()
        .filter(|id| id.0 == 999)
        .count();
    println!(
        "after 10,000 force-pushes of one ID: view changed: {}, slots captured: {captured}",
        node.view().sample_ids() != before,
    );

    // Seed rotation re-ranks a slot every 5 rounds.
    for _ in 0..20 {
        node.finish_round();
    }
    println!(
        "after 20 rounds at rotation interval 5: {} slots rotated\n",
        node.rotations()
    );

    // --- 2. A whole system ----------------------------------------------
    let scenario = Scenario {
        n: 200,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.10,
        view_size: 14,
        sample_size: 14,
        rounds: 120,
        tail_window: 15,
        protocol: Protocol::Raptee,
        seed: 7,
        ..Scenario::default()
    };
    println!(
        "running {} nodes ({} Byzantine) for {} rounds under three protocols...",
        scenario.n,
        scenario.byzantine_count(),
        scenario.rounds
    );

    let brahms = run_scenario(scenario.brahms_baseline());
    let raptee = run_scenario(scenario.clone());
    let basalt = run_scenario(scenario.basalt_variant(30));

    println!("\n  protocol   converged Byzantine in-view share");
    for (name, result) in [
        ("Brahms", &brahms),
        ("RAPTEE", &raptee),
        ("BASALT", &basalt),
    ] {
        println!("  {name:<9}  {:>6.2}%", result.resilience * 100.0);
    }
    println!(
        "\nBASALT rotated {} ranking seeds over the run and, like RAPTEE, \
         undercuts plain Brahms — without any trusted hardware.",
        basalt.seed_rotations
    );
    assert!(
        basalt.resilience < brahms.resilience,
        "BASALT must undercut Brahms"
    );
    assert!(
        raptee.resilience < brahms.resilience,
        "RAPTEE must undercut Brahms"
    );
}
