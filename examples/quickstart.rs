//! Quickstart: stand up a small RAPTEE system and consume the
//! peer-sampling service.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example provisions two trusted nodes through the simulated SGX
//! attestation flow, runs a 400-node population (10 % Byzantine) for 100
//! rounds with the adaptive eviction policy, and then uses the
//! [`PeerSamplingService`] facade the way an upper-layer protocol would.

use raptee::{provisioning, EvictionPolicy};
use raptee::{PeerSamplingService, RapteeConfig, RapteeNode};
use raptee_net::NodeId;
use raptee_sim::{run_scenario, Protocol, Scenario};

fn main() {
    // --- 1. The node-level API ------------------------------------------
    // Provision a trusted node exactly as a deployment would: load the
    // enclave, attest it, receive the group key.
    let mut attestation = provisioning::new_attestation_service(2024);
    attestation.certify_platform(1);
    let key = provisioning::provision_trusted_key(&mut attestation, 1)
        .expect("genuine enclave on a certified platform attests");

    let config = RapteeConfig {
        brahms: raptee_brahms::BrahmsConfig::paper_defaults(20, 20),
        eviction: EvictionPolicy::adaptive(),
    };
    let bootstrap: Vec<NodeId> = (1..=20).map(NodeId).collect();
    let mut node = RapteeNode::new_trusted(NodeId(0), config, &bootstrap, 42, key);
    println!("node {} is trusted: {}", node.id(), node.is_trusted());
    println!("initial view: {} entries", node.current_view().len());
    let peer = node.next_peer().expect("bootstrap provides peers");
    println!("a uniform peer sample: {peer}");

    // --- 2. A whole system ----------------------------------------------
    let scenario = Scenario {
        n: 400,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.10,
        view_size: 16,
        sample_size: 16,
        rounds: 200,
        protocol: Protocol::Raptee,
        seed: 7,
        ..Scenario::default()
    };
    println!(
        "\nrunning {} nodes ({} Byzantine, {} trusted) for {} rounds...",
        scenario.n,
        scenario.byzantine_count(),
        scenario.trusted_count(),
        scenario.rounds
    );
    let raptee = run_scenario(scenario.clone());
    let brahms = run_scenario(scenario.brahms_baseline());
    println!(
        "Brahms baseline: {:.1}% Byzantine IDs in correct views",
        brahms.resilience * 100.0
    );
    println!(
        "RAPTEE:          {:.1}% Byzantine IDs in correct views",
        raptee.resilience * 100.0
    );
    println!(
        "resilience improvement: {:.1}%",
        (brahms.resilience - raptee.resilience) / brahms.resilience * 100.0
    );
}
