//! Eclipse-attack scenario from the paper's introduction.
//!
//! "The peer-sampling protocol of Bitcoin was discovered to be exposed to
//! eclipse attacks, opening the door to multiple types of selfish mining
//! and double-spending attacks at the consensus level." This example
//! plays that scenario against both protocols: an adversary that floods
//! pushes and poisons pull answers, trying to surround honest nodes with
//! its identifiers. We report how close it gets — the share of honest
//! nodes whose views are *majority* Byzantine (half-eclipsed) and fully
//! Byzantine (eclipsed) — and whether the honest overlay stays connected.
//!
//! Run with `cargo run --release --example eclipse_attack`.

use raptee_net::NodeId;
use raptee_sim::{Protocol, Scenario, Simulation};

fn eclipse_report(label: &str, scenario: &Scenario) {
    let byz = scenario.byzantine_count();
    let mut sim = Simulation::new(scenario.clone());
    for _ in 0..scenario.rounds {
        sim.run_round();
    }
    let mut eclipsed = 0usize;
    let mut half = 0usize;
    let mut honest = 0usize;
    // Honest-overlay adjacency (only non-Byzantine links).
    let mut reach: Vec<Vec<usize>> = vec![Vec::new(); scenario.n];
    for i in byz..scenario.n {
        let node = sim.node(NodeId(i as u64)).expect("correct node");
        let view = node.brahms().view();
        let byz_links = view.ids().filter(|id| id.index() < byz).count();
        honest += 1;
        if byz_links == view.len() && !view.is_empty() {
            eclipsed += 1;
        } else if byz_links * 2 > view.len() {
            half += 1;
        }
        for id in view.ids() {
            if id.index() >= byz {
                reach[i].push(id.index());
                reach[id.index()].push(i);
            }
        }
    }
    // Weak connectivity of the honest overlay.
    let mut seen = vec![false; scenario.n];
    let mut stack = vec![byz];
    seen[byz] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &w in &reach[u] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    println!(
        "{label:<8}  eclipsed: {eclipsed:>3}/{honest}   majority-Byzantine views: {half:>3}/{honest}   honest overlay connected: {}",
        if count == honest { "yes" } else { "NO" }
    );
}

fn main() {
    println!("eclipse pressure at f = 25% Byzantine, 150 rounds, N = 400\n");
    let base = Scenario {
        n: 400,
        byzantine_fraction: 0.25,
        trusted_fraction: 0.10,
        view_size: 16,
        sample_size: 16,
        rounds: 150,
        seed: 99,
        ..Scenario::default()
    };
    let brahms = Scenario {
        protocol: Protocol::Brahms,
        ..base.clone()
    };
    eclipse_report("Brahms", &brahms);
    eclipse_report("RAPTEE", &base);
    println!(
        "\nBoth protocols keep the honest overlay connected (no partition), the\n\
         Brahms guarantee RAPTEE inherits; RAPTEE additionally reduces how many\n\
         nodes sit behind majority-Byzantine views."
    );
}
