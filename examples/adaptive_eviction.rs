//! Watch the adaptive eviction rate react to trusted contacts.
//!
//! Section IV-C of the paper: a trusted node evicts between 20 % and 80 %
//! of the IDs pulled from untrusted peers, linearly in the share of
//! trusted contacts it made this round. This example drives a single
//! trusted node through hand-crafted rounds with different contact mixes
//! and prints the applied rate, then compares fixed and adaptive policies
//! on a full run.
//!
//! Run with `cargo run --release --example adaptive_eviction`.

use raptee::{EvictionPolicy, RapteeConfig, RapteeNode};
use raptee_crypto::SecretKey;
use raptee_net::NodeId;
use raptee_sim::{run_scenario, Scenario};

fn trusted(seed: u64) -> RapteeNode {
    let cfg = RapteeConfig {
        brahms: raptee_brahms::BrahmsConfig::paper_defaults(10, 10),
        eviction: EvictionPolicy::adaptive(),
    };
    let boot: Vec<NodeId> = (100..110).map(NodeId).collect();
    RapteeNode::new_trusted(NodeId(seed), cfg, &boot, seed, SecretKey::from_seed(7))
}

fn main() {
    println!("-- single-node view: adaptive rate vs trusted-contact share --\n");
    println!(
        "{:<28} {:>14} {:>14}",
        "round contact mix", "trusted share", "eviction rate"
    );
    for trusted_contacts in 0..=4u32 {
        let untrusted_contacts = 4 - trusted_contacts;
        let mut node = trusted(1);
        node.plan_round();
        // Simulate the contact mix: `trusted_contacts` swaps with other
        // trusted nodes, the rest untrusted pulls.
        for k in 0..trusted_contacts {
            let mut peer = trusted(50 + k as u64);
            peer.plan_round();
            RapteeNode::trusted_swap(&mut node, &mut peer);
        }
        for _ in 0..untrusted_contacts {
            let ids: Vec<NodeId> = (200..210).map(NodeId).collect();
            node.record_untrusted_pull(&ids);
        }
        let outcome = node.finish_round();
        let share = trusted_contacts as f64 / 4.0;
        println!(
            "{:<28} {:>13.0}% {:>13.0}%",
            format!("{trusted_contacts} trusted / {untrusted_contacts} untrusted"),
            share * 100.0,
            outcome.eviction_rate * 100.0
        );
    }

    println!("\n-- system view: fixed rates vs adaptive (f = 20%, t = 10%, N = 400) --\n");
    let base = Scenario {
        n: 400,
        byzantine_fraction: 0.20,
        trusted_fraction: 0.10,
        view_size: 16,
        sample_size: 16,
        rounds: 150,
        seed: 31,
        ..Scenario::default()
    };
    let baseline = run_scenario(base.brahms_baseline());
    println!(
        "{:<12} {:>22} {:>18}",
        "policy", "Byzantine IDs (views)", "improvement"
    );
    for policy in [
        EvictionPolicy::Fixed(0.0),
        EvictionPolicy::Fixed(0.4),
        EvictionPolicy::Fixed(0.6),
        EvictionPolicy::Fixed(1.0),
        EvictionPolicy::adaptive(),
    ] {
        let mut s = base.clone();
        s.eviction = policy;
        let r = run_scenario(s);
        println!(
            "{:<12} {:>21.1}% {:>17.1}%",
            policy.label(),
            r.resilience * 100.0,
            (baseline.resilience - r.resilience) / baseline.resilience * 100.0
        );
    }
    println!(
        "\n(Brahms baseline: {:.1}% Byzantine IDs)",
        baseline.resilience * 100.0
    );
}
