//! Churn: mass departure, healing, and sampler validation.
//!
//! Peer sampling must "quickly remove departed nodes from the views of
//! alive ones" while staying Byzantine-resilient. This example crashes
//! 25 % of the correct nodes mid-run and tracks (a) stale links to dead
//! nodes in live views and (b) dead entries in the min-wise sample lists
//! with and without Brahms' probe validation.
//!
//! Run with `cargo run --release --example churn_and_healing`.

use raptee_net::NodeId;
use raptee_sim::{ChurnSchedule, Scenario, Simulation};

fn stale_stats(sim: &Simulation, s: &Scenario) -> (f64, f64) {
    let byz = s.byzantine_count();
    let mut view_stale = 0usize;
    let mut view_total = 0usize;
    let mut sample_stale = 0usize;
    let mut sample_total = 0usize;
    for i in byz..s.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        let node = sim.node(id).unwrap();
        for v in node.brahms().view().ids() {
            view_total += 1;
            if v.index() >= byz && !sim.is_alive(v) {
                view_stale += 1;
            }
        }
        for v in node.brahms().sampler().samples() {
            sample_total += 1;
            if v.index() >= byz && !sim.is_alive(v) {
                sample_stale += 1;
            }
        }
    }
    (
        view_stale as f64 / view_total.max(1) as f64,
        sample_stale as f64 / sample_total.max(1) as f64,
    )
}

fn run(label: &str, validation_period: usize) {
    let s = Scenario {
        n: 300,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.05,
        view_size: 16,
        sample_size: 16,
        rounds: 120,
        churn: ChurnSchedule::one_shot(0.25, 40),
        sampler_validation_period: validation_period,
        seed: 2023,
        ..Scenario::default()
    };
    let mut sim = Simulation::new(s.clone());
    println!("-- {label} --");
    for round in 0..s.rounds {
        sim.run_round();
        if [39, 45, 60, 90, 119].contains(&round) {
            let (views, samples) = stale_stats(&sim, &s);
            println!(
                "round {round:>3}: stale view links {:>5.1}%   dead sample entries {:>5.1}%",
                views * 100.0,
                samples * 100.0
            );
        }
    }
    println!();
}

fn main() {
    println!("25% of correct nodes crash at round 40 (N = 300, f = 10%)\n");
    run("without sampler validation", 0);
    run("with sampler validation every 5 rounds", 5);
    println!(
        "Views heal on their own (renewal + pull timeouts); the min-wise\n\
         sample lists heal only when Brahms' probe validation re-draws the\n\
         samplers whose sampled node died."
    );
}
