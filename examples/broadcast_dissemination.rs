//! An upper-layer protocol on top of the peer-sampling service:
//! epidemic broadcast.
//!
//! The paper motivates peer sampling as the substrate for "information
//! dissemination" — a node with a new block/transaction gossips it to
//! peers drawn from its sample list. The *quality* of the sample decides
//! whether the rumor reaches everyone: if the adversary is
//! over-represented, infections waste their fan-out on Byzantine nodes
//! that swallow the message.
//!
//! This example runs the peer-sampling layer (Brahms vs RAPTEE) to
//! convergence under a 25 % adversary, then broadcasts a rumor over the
//! resulting sample lists (fanout 4, Byzantine nodes never forward) and
//! reports per-round honest coverage.
//!
//! Run with `cargo run --release --example broadcast_dissemination`.

use raptee_net::NodeId;
use raptee_sim::{Protocol, Scenario, Simulation};
use raptee_util::rng::Xoshiro256StarStar;

const FANOUT: usize = 4;

fn broadcast(label: &str, scenario: &Scenario) {
    let byz = scenario.byzantine_count();
    let mut sim = Simulation::new(scenario.clone());
    for _ in 0..scenario.rounds {
        sim.run_round();
    }
    // Collect each honest node's converged sample list.
    let samples: Vec<Vec<NodeId>> = (0..scenario.n)
        .map(|i| {
            sim.node(NodeId(i as u64))
                .map(|n| n.brahms().sampler().samples())
                .unwrap_or_default()
        })
        .collect();
    // Epidemic rounds: infected honest nodes forward to FANOUT peers from
    // their sample list. Byzantine nodes accept and drop.
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let mut infected = vec![false; scenario.n];
    let source = byz; // first honest node
    infected[source] = true;
    let honest_total = scenario.n - byz;
    print!("{label:<8} coverage/round:");
    for _round in 0..10 {
        let mut next = infected.clone();
        for i in byz..scenario.n {
            if !infected[i] || samples[i].is_empty() {
                continue;
            }
            for _ in 0..FANOUT {
                let peer = samples[i][rng.index(samples[i].len())];
                next[peer.index()] = true;
            }
        }
        infected = next;
        let covered = (byz..scenario.n).filter(|&i| infected[i]).count();
        print!(" {:>3.0}%", covered as f64 / honest_total as f64 * 100.0);
    }
    let covered = (byz..scenario.n).filter(|&i| infected[i]).count();
    println!("  (final: {covered}/{honest_total})");
}

fn main() {
    println!("epidemic broadcast over converged sample lists, f = 25%, fanout = {FANOUT}\n");
    let base = Scenario {
        n: 400,
        byzantine_fraction: 0.25,
        trusted_fraction: 0.10,
        view_size: 16,
        sample_size: 16,
        rounds: 120,
        seed: 17,
        ..Scenario::default()
    };
    broadcast(
        "Brahms",
        &Scenario {
            protocol: Protocol::Brahms,
            ..base.clone()
        },
    );
    broadcast("RAPTEE", &base);
    println!(
        "\nWith fewer Byzantine IDs in the sample lists, RAPTEE wastes less fanout\n\
         on adversarial sinks and reaches full coverage sooner."
    );
}
