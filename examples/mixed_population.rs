//! Mixed-protocol populations and the BASALT+TEE hybrid.
//!
//! PR 2 added BASALT as a third protocol, but each scenario still ran
//! one protocol for its whole correct population. This example shows the
//! generalisation: a `Scenario::population` spec splits the correct
//! nodes into contiguous per-protocol segments sharing one engine, one
//! adversary (which aims each segment's *matching* attack at it —
//! random-ID balanced pushes against the Brahms family, distinct-ID
//! force pushes against the BASALT family), one rate limiter and one
//! metrics pass; `RunResult::segments` then reports pollution per
//! segment next to the combined number.
//!
//! The hybrid itself: `Protocol::BasaltTee` runs BASALT's ranked
//! hit-counter views hardened with the waiting-list/TTL refinement
//! (hearsay IDs from pull answers are quarantined and admitted at a
//! rate-limited probe budget) plus a `t·N` trusted tier attested through
//! the same `raptee-tee` enclave/attestation flow RAPTEE uses — trusted
//! pairs swap full views past each other's waiting lists.
//!
//! Run with: `cargo run --release --example mixed_population`

use raptee_sim::{Protocol, Scenario, Simulation};
use raptee_tee::SgxOverheadModel;

fn main() {
    let base = Scenario {
        n: 600,
        byzantine_fraction: 0.15,
        trusted_fraction: 0.10,
        view_size: 16,
        sample_size: 16,
        rounds: 150,
        tail_window: 20,
        seed: 0x111ED,
        ..Scenario::default()
    };

    println!("=== single-protocol reference points (f = 15 %) ===");
    let brahms = Simulation::new(base.brahms_baseline()).run();
    println!(
        "Brahms          : {:5.2} % pollution",
        brahms.resilience * 100.0
    );
    let raptee = Simulation::new(base.clone()).run();
    println!(
        "RAPTEE  (t=10 %): {:5.2} % pollution",
        raptee.resilience * 100.0
    );
    let basalt = Simulation::new(base.basalt_variant(30)).run();
    println!(
        "BASALT          : {:5.2} % pollution",
        basalt.resilience * 100.0
    );
    let hybrid = Simulation::new(base.basalt_tee_variant(30, 10)).run();
    println!(
        "BASALT+TEE (t=10 %, wlist TTL 10): {:5.2} % pollution",
        hybrid.resilience * 100.0
    );

    println!();
    println!("=== one mixed run: 50 % RAPTEE / 50 % BASALT+TEE ===");
    let mixed = base.half_and_half(
        Protocol::Raptee,
        Protocol::BasaltTee {
            view_size: base.view_size,
            rotation_interval: 30,
            wlist_ttl: 10,
        },
    );
    let trusted = mixed.segment_trusted_counts();
    let result = Simulation::new(mixed.clone()).run();
    println!(
        "combined over {} correct nodes: {:5.2} % pollution",
        mixed.n - mixed.byzantine_count(),
        result.resilience * 100.0
    );
    for (seg, t) in result.segments.iter().zip(&trusted) {
        println!(
            "  {:10} segment: {:3} nodes ({t} trusted) → {:5.2} % pollution",
            seg.protocol.label(),
            seg.nodes,
            seg.resilience * 100.0
        );
    }

    // What the trusted tier costs: the Table I enclave-overhead model,
    // applied to the hybrid's per-round message budget.
    let model = SgxOverheadModel::paper_table1();
    let fanout = ((0.4 * base.view_size as f64).round()) as usize;
    let cycles = model.expected_round_overhead(fanout, fanout, 1);
    println!();
    println!(
        "enclave price per trusted node and round (Table I means, {fanout} pulls + {fanout} \
         pushes + 1 trusted exchange): ~{cycles} cycles"
    );
}
