//! The full trusted-node lifecycle: enclave → attestation → group key →
//! mutual authentication → encrypted channel.
//!
//! Walks through every TEE mechanism the paper relies on, including the
//! failure paths an adversary would hit:
//!
//! 1. load the RAPTEE trusted code into an enclave and *measure* it;
//! 2. remote-attest against the simulated Intel-style service and
//!    receive the group key (only genuine code on certified platforms
//!    succeeds);
//! 3. seal the key to disk format and recover it after a "restart";
//! 4. run the mutual-authentication handshake: trusted↔trusted
//!    recognises, everything else doesn't;
//! 5. open an encrypted channel and exchange a pull answer.
//!
//! Run with `cargo run --release --example trusted_provisioning`.

use raptee::provisioning::{self, TRUSTED_CODE};
use raptee::{EvictionPolicy, RapteeConfig, RapteeNode};
use raptee_net::{NodeId, SecureChannel};
use raptee_tee::enclave::Enclave;
use raptee_tee::AttestationService;

fn main() {
    // 1 + 2: provisioning through attestation.
    let mut service = provisioning::new_attestation_service(777);
    service.certify_platform(1);
    service.certify_platform(2);
    service.certify_platform(666); // the adversary also buys a real CPU

    let mut enclave_a = provisioning::provision_trusted_enclave(&mut service, 1).unwrap();
    let enclave_b = provisioning::provision_trusted_enclave(&mut service, 2).unwrap();
    println!("enclave A measurement: {}", enclave_a.measurement());
    println!("enclave B measurement: {}", enclave_b.measurement());
    println!(
        "both provisioned: {} / {}",
        enclave_a.is_provisioned(),
        enclave_b.is_provisioned()
    );

    // The adversary runs *modified* code on its genuine CPU: refused.
    let evil = Enclave::load(b"raptee trusted code, but evil", 666);
    let nonce = service.challenge();
    let quote = AttestationService::quote(666, &evil, nonce);
    println!(
        "adversary's tampered enclave attests: {:?}",
        service.attest(&quote).err().unwrap()
    );

    // 3: seal + restart recovery.
    let key = enclave_a.group_key().unwrap().clone();
    enclave_a.seal("group-key", key.as_bytes());
    let blob = enclave_a.export_sealed("group-key").unwrap().to_vec();
    let restarted = Enclave::load(TRUSTED_CODE, 1);
    let recovered = restarted.unseal_blob(&blob).unwrap();
    println!(
        "sealed key recovered after restart: {}",
        recovered == key.as_bytes()
    );

    // 4: mutual authentication.
    let cfg = RapteeConfig {
        brahms: raptee_brahms::BrahmsConfig::paper_defaults(8, 8),
        eviction: EvictionPolicy::adaptive(),
    };
    let boot: Vec<NodeId> = (10..18).map(NodeId).collect();
    let key_a = enclave_a.group_key().unwrap().clone();
    let key_b = enclave_b.group_key().unwrap().clone();
    let mut node_a = RapteeNode::new_trusted(NodeId(1), cfg.clone(), &boot, 1, key_a);
    let mut node_b = RapteeNode::new_trusted(NodeId(2), cfg.clone(), &boot, 2, key_b);
    let mut node_u = RapteeNode::new_untrusted(NodeId(3), cfg, &boot, 3);
    let (a_sees_b, b_sees_a) = RapteeNode::run_handshake(&mut node_a, &mut node_b);
    println!("trusted  ↔ trusted  : {a_sees_b:?} / {b_sees_a:?}");
    let (a_sees_u, u_sees_a) = RapteeNode::run_handshake(&mut node_a, &mut node_u);
    println!("trusted  ↔ untrusted: {a_sees_u:?} / {u_sees_a:?}");

    // 5: encrypted pull answer over the pairwise channel.
    let base = node_a.brahms().id(); // channel context uses node IDs
    let _ = base;
    let group = enclave_b.group_key().unwrap();
    let mut tx = SecureChannel::new(group, NodeId(1), NodeId(2));
    let mut rx = SecureChannel::new(group, NodeId(1), NodeId(2));
    let answer = node_a.pull_answer();
    let wire: Vec<u8> = answer.iter().flat_map(|id| id.to_bytes()).collect();
    let ciphertext = tx.seal_from_initiator(&wire);
    println!(
        "pull answer: {} IDs → {} encrypted bytes (length-preserving)",
        answer.len(),
        ciphertext.len()
    );
    let clear = rx.open_from_initiator(&ciphertext);
    println!("responder decrypts correctly: {}", clear == wire);
}
